package cfg

import (
	"testing"

	"slicehide/internal/ir"
)

func buildFunc(t *testing.T, src, name string) *Graph {
	t.Helper()
	p, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := p.Func(name)
	if f == nil {
		t.Fatalf("no func %s", name)
	}
	return Build(f)
}

func node(t *testing.T, g *Graph, stmtID int) *Node {
	t.Helper()
	n := g.ByStmt[stmtID]
	if n == nil {
		t.Fatalf("no node for stmt %d\n%s", stmtID, g)
	}
	return n
}

func TestStraightLine(t *testing.T) {
	g := buildFunc(t, `func f(): int { var a: int = 1; var b: int = a + 1; return b; }`, "f")
	// entry, exit, 3 statements.
	if len(g.Nodes) != 5 {
		t.Fatalf("node count %d\n%s", len(g.Nodes), g)
	}
	if len(g.Entry.Succs) != 1 {
		t.Fatalf("entry succs: %v", g.Entry.Succs)
	}
	// Path entry -> a -> b -> return -> exit.
	n := g.Entry
	for i := 0; i < 4; i++ {
		if len(n.Succs) != 1 {
			t.Fatalf("node %s has %d succs", n, len(n.Succs))
		}
		n = n.Succs[0]
	}
	if n != g.Exit {
		t.Fatalf("path does not end at exit: %s", n)
	}
}

func TestIfElseDiamond(t *testing.T) {
	g := buildFunc(t, `
func f(x: int): int {
    var r: int = 0;
    if (x > 0) { r = 1; } else { r = 2; }
    return r;
}`, "f")
	cond := node(t, g, 1)
	if len(cond.Succs) != 2 {
		t.Fatalf("if node should have 2 succs, has %d", len(cond.Succs))
	}
	ret := node(t, g, 4)
	if len(ret.Preds) != 2 {
		t.Fatalf("join should have 2 preds, has %d", len(ret.Preds))
	}
}

func TestIfNoElse(t *testing.T) {
	g := buildFunc(t, `
func f(x: int): int {
    if (x > 0) { x = x - 1; }
    return x;
}`, "f")
	cond := node(t, g, 0)
	ret := node(t, g, 2)
	// cond must reach ret both via the then branch and directly.
	direct := false
	for _, s := range cond.Succs {
		if s == ret {
			direct = true
		}
	}
	if !direct {
		t.Errorf("if without else must fall through to join\n%s", g)
	}
}

func TestWhileLoopEdges(t *testing.T) {
	g := buildFunc(t, `
func f(n: int): int {
    var i: int = 0;
    while (i < n) { i = i + 1; }
    return i;
}`, "f")
	cond := node(t, g, 1)
	body := node(t, g, 2)
	ret := node(t, g, 3)
	// cond -> body, cond -> ret; body -> cond.
	has := func(from, to *Node) bool {
		for _, s := range from.Succs {
			if s == to {
				return true
			}
		}
		return false
	}
	if !has(cond, body) || !has(cond, ret) {
		t.Fatalf("cond edges wrong\n%s", g)
	}
	if !has(body, cond) {
		t.Fatalf("back edge missing\n%s", g)
	}
}

func TestBreakContinueEdges(t *testing.T) {
	g := buildFunc(t, `
func f(n: int): int {
    var s: int = 0;
    for (var i: int = 0; i < n; i++) {
        if (i == 3) { break; }
        if (i % 2 == 0) { continue; }
        s = s + i;
    }
    return s;
}`, "f")
	f := g.Func
	// Find the while statement and its post assign.
	var loop *ir.WhileStmt
	ir.WalkStmts(f.Body, func(s ir.Stmt) bool {
		if w, ok := s.(*ir.WhileStmt); ok {
			loop = w
		}
		return true
	})
	if loop == nil || len(loop.Post) != 1 {
		t.Fatalf("loop/post missing")
	}
	post := g.ByStmt[loop.Post[0].ID()]
	// Find break and continue nodes.
	var brk, cont *Node
	for _, n := range g.Nodes {
		switch n.Stmt.(type) {
		case *ir.BreakStmt:
			brk = n
		case *ir.ContinueStmt:
			cont = n
		}
	}
	if brk == nil || cont == nil {
		t.Fatal("break/continue nodes missing")
	}
	// continue -> post (not cond).
	if len(cont.Succs) != 1 || cont.Succs[0] != post {
		t.Errorf("continue should target post, got %v", cont.Succs)
	}
	// break -> return node.
	var ret *Node
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*ir.ReturnStmt); ok {
			ret = n
		}
	}
	if len(brk.Succs) != 1 || brk.Succs[0] != ret {
		t.Errorf("break should target loop exit (return), got %v", brk.Succs)
	}
}

func TestDominators(t *testing.T) {
	g := buildFunc(t, `
func f(x: int): int {
    var r: int = 0;
    if (x > 0) { r = 1; } else { r = 2; }
    return r;
}`, "f")
	dom := Dominators(g)
	init := node(t, g, 0)
	cond := node(t, g, 1)
	thn := node(t, g, 2)
	els := node(t, g, 3)
	ret := node(t, g, 4)
	if !dom.Dominates(cond, ret) || !dom.Dominates(init, ret) {
		t.Error("cond and init must dominate return")
	}
	if dom.Dominates(thn, ret) || dom.Dominates(els, ret) {
		t.Error("branch arms must not dominate return")
	}
	if d := dom.Idom(ret); d != cond {
		t.Errorf("idom(return) = %v, want cond", d)
	}
	if d := dom.Idom(thn); d != cond {
		t.Errorf("idom(then) = %v, want cond", d)
	}
}

func TestPostDominators(t *testing.T) {
	g := buildFunc(t, `
func f(x: int): int {
    var r: int = 0;
    if (x > 0) { r = 1; }
    return r;
}`, "f")
	pd := PostDominators(g)
	cond := node(t, g, 1)
	thn := node(t, g, 2)
	ret := node(t, g, 3)
	if !pd.Dominates(ret, cond) {
		t.Error("return must post-dominate cond")
	}
	if pd.Dominates(thn, cond) {
		t.Error("then arm must not post-dominate cond")
	}
}

func TestControlDeps(t *testing.T) {
	g := buildFunc(t, `
func f(x: int): int {
    var r: int = 0;
    if (x > 0) { r = 1; } else { r = 2; }
    while (r < 10) { r = r * 2; }
    return r;
}`, "f")
	deps := ControlDeps(g)
	ifn := node(t, g, 1)
	thn := node(t, g, 2)
	els := node(t, g, 3)
	wcond := node(t, g, 4)
	wbody := node(t, g, 5)
	ret := node(t, g, 6)

	hasDep := func(n, on *Node) bool {
		for _, d := range deps[n] {
			if d == on {
				return true
			}
		}
		return false
	}
	if !hasDep(thn, ifn) || !hasDep(els, ifn) {
		t.Errorf("branch arms must depend on if: %v", deps)
	}
	if !hasDep(wbody, wcond) {
		t.Errorf("loop body must depend on loop cond")
	}
	if !hasDep(wcond, wcond) {
		t.Errorf("loop cond must depend on itself")
	}
	if hasDep(ret, ifn) || hasDep(ret, wcond) {
		t.Errorf("return must not be control dependent: %v", deps[ret])
	}
}

func TestNaturalLoops(t *testing.T) {
	g := buildFunc(t, `
func f(n: int): int {
    var s: int = 0;
    for (var i: int = 0; i < n; i++) {
        for (var j: int = 0; j < i; j++) {
            s = s + j;
        }
    }
    return s;
}`, "f")
	loops := NaturalLoops(g)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	depths := LoopDepths(g)
	maxDepth := 0
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != 2 {
		t.Errorf("max nesting depth %d, want 2", maxDepth)
	}
}

func TestUnreachableCodeDoesNotBreakBuild(t *testing.T) {
	g := buildFunc(t, `
func f(): int {
    return 1;
    var x: int = 2;
    return x;
}`, "f")
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("graph incomplete")
	}
	// Dominators should still terminate.
	_ = Dominators(g)
	_ = PostDominators(g)
}

func TestInfiniteLoop(t *testing.T) {
	g := buildFunc(t, `
func f(): int {
    var i: int = 0;
    for (;;) {
        i = i + 1;
        if (i > 10) { break; }
    }
    return i;
}`, "f")
	loops := NaturalLoops(g)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	// break must be the only loop exit.
	ret := func() *Node {
		for _, n := range g.Nodes {
			if _, ok := n.Stmt.(*ir.ReturnStmt); ok {
				return n
			}
		}
		return nil
	}()
	if len(ret.Preds) != 1 {
		t.Errorf("return should be reached only via break, preds=%v", ret.Preds)
	}
}
