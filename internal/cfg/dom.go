package cfg

// Dominator and post-dominator computation using the classic iterative
// bit-set algorithm, plus control-dependence derived from post-dominators
// (Ferrante/Ottenstein/Warren).

// DomInfo holds (post-)dominator sets for a graph.
type DomInfo struct {
	g *Graph
	// dom[i] is the set of node indices that (post-)dominate node i.
	dom []bitset
	// idom[i] is the immediate (post-)dominator index, or -1.
	idom []int
	post bool
}

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) intersect(o bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] & o[i]
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) fill() {
	for i := range b {
		b[i] = ^uint64(0)
	}
}

// Dominators computes the dominator sets of g (from Entry).
func Dominators(g *Graph) *DomInfo { return computeDom(g, false) }

// PostDominators computes the post-dominator sets of g (from Exit).
func PostDominators(g *Graph) *DomInfo { return computeDom(g, true) }

func computeDom(g *Graph, post bool) *DomInfo {
	n := len(g.Nodes)
	d := &DomInfo{g: g, dom: make([]bitset, n), idom: make([]int, n), post: post}
	root := g.Entry
	if post {
		root = g.Exit
	}
	for i := range d.dom {
		d.dom[i] = newBitset(n)
		if i == root.Index {
			d.dom[i].set(i)
		} else {
			d.dom[i].fill()
		}
	}
	preds := func(node *Node) []*Node {
		if post {
			return node.Succs
		}
		return node.Preds
	}
	changed := true
	tmp := newBitset(n)
	for changed {
		changed = false
		for _, node := range g.Nodes {
			if node == root {
				continue
			}
			tmp.fill()
			any := false
			for _, p := range preds(node) {
				tmp.intersect(d.dom[p.Index])
				any = true
			}
			if !any {
				// Unreachable from root in this direction: leave as full set
				// (vacuously dominated by everything).
				continue
			}
			tmp.set(node.Index)
			if !tmp.equal(d.dom[node.Index]) {
				d.dom[node.Index].copyFrom(tmp)
				changed = true
			}
		}
	}
	d.computeIdom(root)
	return d
}

func (d *DomInfo) computeIdom(root *Node) {
	n := len(d.g.Nodes)
	for i := range d.idom {
		d.idom[i] = -1
	}
	for i := 0; i < n; i++ {
		if i == root.Index {
			continue
		}
		// idom(i) = the strict dominator of i dominated by all other strict
		// dominators of i, i.e. the one whose dominator set is largest
		// while still being a strict dominator.
		best, bestCount := -1, -1
		for j := 0; j < n; j++ {
			if j == i || !d.dom[i].has(j) {
				continue
			}
			count := 0
			for k := 0; k < n; k++ {
				if d.dom[j].has(k) {
					count++
				}
			}
			if count > bestCount && count < n { // skip "full set" unreachable markers
				best, bestCount = j, count
			}
		}
		d.idom[i] = best
	}
}

// Dominates reports whether a (post-)dominates b.
func (d *DomInfo) Dominates(a, b *Node) bool { return d.dom[b.Index].has(a.Index) }

// Idom returns the immediate (post-)dominator of n, or nil.
func (d *DomInfo) Idom(n *Node) *Node {
	i := d.idom[n.Index]
	if i < 0 {
		return nil
	}
	return d.g.Nodes[i]
}

// ControlDeps computes control dependence: result[b] contains the branch
// nodes that b is control dependent on. Derived from the post-dominator
// relation: for an edge (a→b) where b does not post-dominate a, every node
// on the post-dominator-tree path from b up to but excluding ipdom(a) is
// control dependent on a.
func ControlDeps(g *Graph) map[*Node][]*Node {
	pd := PostDominators(g)
	deps := make(map[*Node]map[*Node]bool)
	for _, a := range g.Nodes {
		if len(a.Succs) < 2 {
			continue
		}
		stop := pd.Idom(a)
		for _, b := range a.Succs {
			runner := b
			for runner != nil && runner != stop && runner != a {
				if deps[runner] == nil {
					deps[runner] = make(map[*Node]bool)
				}
				deps[runner][a] = true
				runner = pd.Idom(runner)
			}
			// Self-dependence (loop header on itself) is recorded when the
			// walk re-reaches a.
			if runner == a {
				if deps[a] == nil {
					deps[a] = make(map[*Node]bool)
				}
				deps[a][a] = true
			}
		}
	}
	out := make(map[*Node][]*Node, len(deps))
	for n, m := range deps {
		for d := range m {
			out[n] = append(out[n], d)
		}
	}
	return out
}

// Loop describes a natural loop.
type Loop struct {
	// Head is the loop header (the condition node of a while statement).
	Head *Node
	// Body is the set of nodes in the loop, including the header.
	Body map[*Node]bool
}

// NaturalLoops finds the natural loops of g using back edges (tail→head
// where head dominates tail).
func NaturalLoops(g *Graph) []*Loop {
	dom := Dominators(g)
	byHead := make(map[*Node]*Loop)
	var order []*Node
	for _, tail := range g.Nodes {
		for _, head := range tail.Succs {
			if !dom.Dominates(head, tail) {
				continue
			}
			l, ok := byHead[head]
			if !ok {
				l = &Loop{Head: head, Body: map[*Node]bool{head: true}}
				byHead[head] = l
				order = append(order, head)
			}
			// Collect nodes reaching tail without passing through head.
			var stack []*Node
			if !l.Body[tail] {
				l.Body[tail] = true
				stack = append(stack, tail)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range n.Preds {
					if !l.Body[p] {
						l.Body[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHead[h])
	}
	return loops
}

// LoopDepths returns the nesting depth of each node (0 = not in any loop).
func LoopDepths(g *Graph) map[*Node]int {
	depth := make(map[*Node]int, len(g.Nodes))
	for _, l := range NaturalLoops(g) {
		for n := range l.Body {
			depth[n]++
		}
	}
	return depth
}
