// Package slicer computes the forward data slices that seed the splitting
// transformation (paper §2.2, Step 1) and classifies every statement touched
// by the slice according to the paper's Step-3 case analysis.
//
// Slicing is performed at variable granularity: starting from a seed
// variable v, the hidden-variable set is the least fixpoint of
//
//	u ∈ Hidden if u = rhs is an assignment with a hideable scalar lhs,
//	rhs contains no call, and rhs references a variable in Hidden.
//
// A variable with any hidden definition must be maintained by the hidden
// component for every definition (otherwise the open component could not
// know where its current value lives), which is why propagation is by
// variable rather than by individual definition.
package slicer

import (
	"fmt"
	"sort"
	"strings"

	"slicehide/internal/cfg"
	"slicehide/internal/dataflow"
	"slicehide/internal/ir"
)

// Policy controls which variables may be hidden. The paper's base algorithm
// hides scalar locals of the split function; globals and class fields are
// the §2.2 extension.
type Policy struct {
	HideGlobals bool
	HideFields  bool
}

// HideableVar reports whether v's storage may be moved into the hidden
// component. Aggregates (arrays, objects, strings) are never hideable
// (paper restriction: limits hidden-side storage and communication).
func (p Policy) HideableVar(v *ir.Var) bool {
	if v == nil || !v.IsScalar() {
		return false
	}
	switch v.Kind {
	case ir.VarLocal, ir.VarParam:
		return true
	case ir.VarGlobal:
		return p.HideGlobals
	case ir.VarField:
		return p.HideFields
	}
	return false
}

// Role classifies a statement touched by the slice (paper Step 3).
type Role int

// Statement roles.
const (
	// RoleNone: statement untouched by the slice (case iv with no hidden uses).
	RoleNone Role = iota
	// RoleFull: both sides move to Hf (case i).
	RoleFull
	// RoleSend: lhs is hidden but rhs cannot move (contains a call); the rhs
	// is evaluated openly and the value sent to Hf (case ii).
	RoleSend
	// RoleLeak: rhs moves to Hf but lhs cannot (array element or other
	// unhideable target); the hidden side returns the value — an ILP
	// (case iii).
	RoleLeak
	// RoleUse: the statement stays open but reads hidden variables, which
	// must be fetched from Hf — each fetch is an ILP (case iv with hidden
	// uses; also returns, prints, call arguments).
	RoleUse
	// RoleCond: an if/while condition reading hidden variables; a candidate
	// for control-flow hiding, otherwise it degrades to a fetch.
	RoleCond
)

func (r Role) String() string {
	switch r {
	case RoleNone:
		return "none"
	case RoleFull:
		return "full"
	case RoleSend:
		return "send"
	case RoleLeak:
		return "leak"
	case RoleUse:
		return "use"
	case RoleCond:
		return "cond"
	}
	return "?"
}

// Slice is the result of slicing function Func from Seed.
type Slice struct {
	Func *ir.Func
	Seed *ir.Var
	// Hidden is the set of hidden variables (seed plus forward closure).
	Hidden map[*ir.Var]bool
	// Roles maps statement IDs to their classification. Statements not
	// present have RoleNone.
	Roles map[int]Role
	// Stmts maps statement IDs in the slice to their IR statements.
	Stmts map[int]ir.Stmt

	// Graph and Reach expose the underlying analyses for reuse by the
	// splitting transformation and the complexity analysis.
	Graph *cfg.Graph
	Reach *dataflow.Result
}

// Size returns the number of statements in the slice.
func (s *Slice) Size() int { return len(s.Stmts) }

// usesHiddenScalar reports whether stmt reads any hidden variable. Array
// element pseudo-variables never count: arrays are not hidden.
func usesHiddenScalar(stmt ir.Stmt, hidden map[*ir.Var]bool) bool {
	for _, v := range ir.UsedVars(stmt) {
		if hidden[v] {
			return true
		}
	}
	return false
}

// rhsReferencesHidden reports whether expression e reads a hidden variable.
func rhsReferencesHidden(e ir.Expr, hidden map[*ir.Var]bool) bool {
	for _, v := range ir.ExprVars(e) {
		if hidden[v] {
			return true
		}
	}
	return false
}

// Compute slices f forward from seed under policy.
func Compute(f *ir.Func, seed *ir.Var, policy Policy) *Slice {
	g := cfg.Build(f)
	reach := dataflow.Reaching(g)
	s := &Slice{
		Func:   f,
		Seed:   seed,
		Hidden: map[*ir.Var]bool{seed: true},
		Roles:  make(map[int]Role),
		Stmts:  make(map[int]ir.Stmt),
		Graph:  g,
		Reach:  reach,
	}

	// Collect assignments once.
	type assign struct {
		stmt *ir.AssignStmt
		lhs  *ir.Var // nil if not a variable target
	}
	var assigns []assign
	ir.WalkStmts(f.Body, func(st ir.Stmt) bool {
		if a, ok := st.(*ir.AssignStmt); ok {
			var lhs *ir.Var
			switch t := a.Lhs.(type) {
			case *ir.VarTarget:
				lhs = t.Var
			case *ir.FieldTarget:
				// Class fields participate in the forward closure when the
				// policy allows hiding them (the §2.2 OO extension).
				lhs = t.FieldVar
			}
			assigns = append(assigns, assign{stmt: a, lhs: lhs})
		}
		return true
	})

	// Fixpoint: forward closure over data dependences (Step 1).
	for changed := true; changed; {
		changed = false
		for _, a := range assigns {
			if a.lhs == nil || s.Hidden[a.lhs] || !policy.HideableVar(a.lhs) {
				continue
			}
			if ir.HasCall(a.stmt.Rhs) {
				continue
			}
			if rhsReferencesHidden(a.stmt.Rhs, s.Hidden) {
				s.Hidden[a.lhs] = true
				changed = true
			}
		}
	}

	// Classification (Step 3).
	ir.WalkStmts(f.Body, func(st ir.Stmt) bool {
		role := classify(st, s.Hidden, policy)
		if role != RoleNone {
			s.Roles[st.ID()] = role
			s.Stmts[st.ID()] = st
		}
		return true
	})
	return s
}

func classify(st ir.Stmt, hidden map[*ir.Var]bool, policy Policy) Role {
	switch st := st.(type) {
	case *ir.AssignStmt:
		lhsVar := ir.DefinedVar(st)
		lhsHidden := lhsVar != nil && hidden[lhsVar]
		usesHidden := usesHiddenScalar(st, hidden)
		switch {
		case lhsHidden && !ir.HasCall(st.Rhs):
			return RoleFull
		case lhsHidden:
			return RoleSend
		case usesHidden && !ir.HasCall(st.Rhs) && rhsReferencesHidden(st.Rhs, hidden):
			// The rhs computation moves to Hf; the open target receives the
			// returned value.
			return RoleLeak
		case usesHidden:
			return RoleUse
		}
	case *ir.IfStmt:
		if rhsReferencesHidden(st.Cond, hidden) {
			return RoleCond
		}
	case *ir.WhileStmt:
		if rhsReferencesHidden(st.Cond, hidden) {
			return RoleCond
		}
	case *ir.ReturnStmt:
		if st.Value != nil && rhsReferencesHidden(st.Value, hidden) {
			return RoleUse
		}
	case *ir.PrintStmt:
		for _, a := range st.Args {
			if rhsReferencesHidden(a, hidden) {
				return RoleUse
			}
		}
	case *ir.CallStmt:
		if rhsReferencesHidden(st.Call, hidden) {
			return RoleUse
		}
	}
	return RoleNone
}

// HiddenDefStmts returns the IDs of statements whose definitions live in the
// hidden component (RoleFull and RoleSend).
func (s *Slice) HiddenDefStmts() []int {
	var ids []int
	for id, r := range s.Roles {
		if r == RoleFull || r == RoleSend {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// HiddenVarNames returns the hidden variable names, sorted.
func (s *Slice) HiddenVarNames() []string {
	var names []string
	for v := range s.Hidden {
		names = append(names, v.String())
	}
	sort.Strings(names)
	return names
}

// String renders the slice for golden tests: hidden vars plus per-statement
// roles in statement-ID order.
func (s *Slice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "slice of %s from %s\n", s.Func.QName(), s.Seed)
	fmt.Fprintf(&b, "hidden: %s\n", strings.Join(s.HiddenVarNames(), " "))
	var ids []int
	for id := range s.Roles {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "s%-3d %s\n", id, s.Roles[id])
	}
	return b.String()
}

// BestSeed picks, among f's hideable scalar locals, the seed producing the
// largest slice (a proxy used by tests and tools; the experiment driver in
// package core selects by ILP complexity instead, as the paper does).
func BestSeed(f *ir.Func, policy Policy) (*ir.Var, *Slice) {
	var bestVar *ir.Var
	var bestSlice *Slice
	for _, v := range f.Locals {
		if !policy.HideableVar(v) {
			continue
		}
		sl := Compute(f, v, policy)
		if bestSlice == nil || sl.Size() > bestSlice.Size() {
			bestVar, bestSlice = v, sl
		}
	}
	return bestVar, bestSlice
}
