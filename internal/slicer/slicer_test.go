package slicer

import (
	"strings"
	"testing"

	"slicehide/internal/ir"
)

// figure2Src is the paper's Figure 2 example: splitting function f is
// initiated by hiding local variable a; the forward slice pulls in b, i,
// and sum, the whole while loop, and the then-clause of the if.
const figure2Src = `
func f(x: int, y: int, z: int): int {
    var a: int = 3 * x + y;
    var b: int = 0;
    var sum: int = 0;
    var i: int = a;
    var B: int[] = new int[z + 1];
    while (i < z) {
        b = 2 * i;
        sum = sum + b;
        B[i] = b;
        i = i + 1;
    }
    if (sum > 100) {
        sum = sum - 100;
    } else {
        B[0] = x;
    }
    return sum;
}
func main() { print(f(1, 2, 10)); }
`

func sliceOf(t *testing.T, src, fn, seed string, policy Policy) *Slice {
	t.Helper()
	p, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := p.Func(fn)
	if f == nil {
		t.Fatalf("no func %s", fn)
	}
	v := f.LookupVar(seed)
	if v == nil {
		t.Fatalf("no var %s", seed)
	}
	return Compute(f, v, policy)
}

func TestFigure2HiddenVars(t *testing.T) {
	s := sliceOf(t, figure2Src, "f", "a", Policy{})
	for _, name := range []string{"a", "b", "sum", "i"} {
		if !s.Hidden[s.Func.LookupVar(name)] {
			t.Errorf("%s must be hidden", name)
		}
	}
	if s.Hidden[s.Func.LookupVar("B")] {
		t.Error("array B must not be hidden")
	}
	if s.Hidden[s.Func.LookupVar("x")] {
		t.Error("x is only read; it must not be hidden")
	}
}

func TestFigure2Roles(t *testing.T) {
	s := sliceOf(t, figure2Src, "f", "a", Policy{})
	f := s.Func
	// Find statements by shape.
	var roles = map[string]Role{}
	ir.WalkStmts(f.Body, func(st ir.Stmt) bool {
		r := s.Roles[st.ID()]
		switch st := st.(type) {
		case *ir.AssignStmt:
			roles[ir.TargetString(st.Lhs)+" = "+ir.ExprString(st.Rhs)] = r
		case *ir.WhileStmt:
			roles["while"] = r
		case *ir.IfStmt:
			roles["if"] = r
		case *ir.ReturnStmt:
			roles["return"] = r
		}
		return true
	})
	wants := map[string]Role{
		"a = (3 * x) + y": RoleFull,
		"b = 2 * i":       RoleFull,
		"sum = sum + b":   RoleFull,
		"i = i + 1":       RoleFull,
		"sum = sum - 100": RoleFull,
		"B[i] = b":        RoleLeak,
		"while":           RoleCond,
		"if":              RoleCond,
		"return":          RoleUse,
	}
	for k, want := range wants {
		if got, ok := roles[k]; !ok || got != want {
			t.Errorf("%q: role %v, want %v (present %v)", k, got, want, ok)
		}
	}
	// B[0] = x uses no hidden values: untouched.
	if r := roles["B[0] = x"]; r != RoleNone {
		t.Errorf("B[0] = x: role %v, want none", r)
	}
}

func TestSeedInitializersHidden(t *testing.T) {
	// var a = 3*x+y is the seed's def; it must be in the slice (RoleFull).
	s := sliceOf(t, figure2Src, "f", "a", Policy{})
	if len(s.HiddenDefStmts()) < 5 {
		t.Errorf("hidden def stmts: %v", s.HiddenDefStmts())
	}
}

func TestCallRhsBecomesSend(t *testing.T) {
	s := sliceOf(t, `
func g(v: int): int { return v * 2; }
func f(x: int): int {
    var a: int = x + 1;
    a = g(a);
    a = a + 5;
    return a;
}
func main() { print(f(3)); }`, "f", "a", Policy{})
	f := s.Func
	// a = g(a) must be RoleSend: lhs hidden, rhs has call.
	var sendSeen, fullSeen bool
	ir.WalkStmts(f.Body, func(st ir.Stmt) bool {
		if a, ok := st.(*ir.AssignStmt); ok {
			switch s.Roles[a.ID()] {
			case RoleSend:
				if ir.HasCall(a.Rhs) {
					sendSeen = true
				}
			case RoleFull:
				fullSeen = true
			}
		}
		return true
	})
	if !sendSeen {
		t.Error("call-rhs def of hidden var must be RoleSend")
	}
	if !fullSeen {
		t.Error("plain defs of hidden var must be RoleFull")
	}
}

func TestPropagationStopsAtCalls(t *testing.T) {
	s := sliceOf(t, `
func g(v: int): int { return v; }
func f(x: int): int {
    var a: int = x;
    var u: int = g(a);
    var w: int = u + 1;
    return w;
}
func main() { print(f(1)); }`, "f", "a", Policy{})
	f := s.Func
	if s.Hidden[f.LookupVar("u")] {
		t.Error("u = g(a) must not propagate hiding through the call")
	}
	if s.Hidden[f.LookupVar("w")] {
		t.Error("w depends on u which is open")
	}
	// u = g(a) uses hidden a: RoleUse.
	if r := s.Roles[f.Body[1].ID()]; r != RoleUse {
		t.Errorf("u = g(a): role %v, want use", r)
	}
}

func TestPropagationThroughArraysStops(t *testing.T) {
	s := sliceOf(t, `
func f(x: int): int {
    var a: int = x;
    var B: int[] = new int[4];
    B[0] = a;
    var c: int = B[0];
    return c;
}
func main() { print(f(1)); }`, "f", "a", Policy{})
	f := s.Func
	if s.Hidden[f.LookupVar("c")] {
		t.Error("slice must terminate at array element definitions")
	}
	// B[0] = a is a leak (rhs hidden, lhs open aggregate).
	if r := s.Roles[f.Body[2].ID()]; r != RoleLeak {
		t.Errorf("B[0] = a: role %v, want leak", r)
	}
}

func TestBoolHiddenVariablePropagates(t *testing.T) {
	s := sliceOf(t, `
func f(x: int): int {
    var a: int = x * 2;
    var big: bool = a > 10;
    if (big) { return 1; }
    return 0;
}
func main() { print(f(9)); }`, "f", "a", Policy{})
	f := s.Func
	if !s.Hidden[f.LookupVar("big")] {
		t.Error("bool derived from hidden var must be hidden")
	}
	// The if reads hidden 'big' -> RoleCond.
	var condRole Role
	ir.WalkStmts(f.Body, func(st ir.Stmt) bool {
		if _, ok := st.(*ir.IfStmt); ok {
			condRole = s.Roles[st.ID()]
		}
		return true
	})
	if condRole != RoleCond {
		t.Errorf("if role %v, want cond", condRole)
	}
}

func TestGlobalsRespectPolicy(t *testing.T) {
	src := `
var g: int = 0;
func f(x: int): int {
    var a: int = x;
    g = a + 1;
    return g;
}
func main() { print(f(1)); }`
	s := sliceOf(t, src, "f", "a", Policy{})
	var gv *ir.Var
	for v := range s.Hidden {
		if v.Kind == ir.VarGlobal {
			gv = v
		}
	}
	if gv != nil {
		t.Error("global hidden despite HideGlobals=false")
	}
	s2 := sliceOf(t, src, "f", "a", Policy{HideGlobals: true})
	found := false
	for v := range s2.Hidden {
		if v.Kind == ir.VarGlobal {
			found = true
		}
	}
	if !found {
		t.Error("global not hidden despite HideGlobals=true")
	}
}

func TestStringNeverHidden(t *testing.T) {
	s := sliceOf(t, `
func f(x: int): string {
    var a: int = x;
    var msg: string = "v";
    if (a > 0) { msg = "pos"; }
    return msg;
}
func main() { print(f(1)); }`, "f", "a", Policy{})
	if s.Hidden[s.Func.LookupVar("msg")] {
		t.Error("string variable must never be hidden")
	}
}

func TestPrintIsUse(t *testing.T) {
	s := sliceOf(t, `
func f(x: int) {
    var a: int = x + 1;
    print(a);
}
func main() { f(2); }`, "f", "a", Policy{})
	f := s.Func
	if r := s.Roles[f.Body[1].ID()]; r != RoleUse {
		t.Errorf("print(a): role %v, want use", r)
	}
}

func TestBestSeed(t *testing.T) {
	p := ir.MustCompile(figure2Src)
	f := p.Func("f")
	seed, sl := BestSeed(f, Policy{})
	if seed == nil || sl == nil {
		t.Fatal("no seed found")
	}
	// Seeding at 'a' (or an equivalent variable in its closure) gives the
	// largest slice; 'B' must never be chosen.
	if seed.Name == "B" {
		t.Errorf("seed %s must be scalar", seed)
	}
	if sl.Size() < 5 {
		t.Errorf("best slice too small: %d", sl.Size())
	}
}

func TestSliceStringGolden(t *testing.T) {
	s := sliceOf(t, figure2Src, "f", "a", Policy{})
	text := s.String()
	for _, want := range []string{"slice of f from a", "hidden: a b i sum"} {
		if !strings.Contains(text, want) {
			t.Errorf("slice dump missing %q:\n%s", want, text)
		}
	}
}

func TestNoHiddenUsesNoRoles(t *testing.T) {
	s := sliceOf(t, `
func f(x: int): int {
    var a: int = x;
    var unrelated: int = 7;
    return unrelated;
}
func main() { print(f(1)); }`, "f", "a", Policy{})
	f := s.Func
	if r := s.Roles[f.Body[1].ID()]; r != RoleNone {
		t.Errorf("unrelated stmt role %v", r)
	}
	if r := s.Roles[f.Body[2].ID()]; r != RoleNone {
		t.Errorf("unrelated return role %v", r)
	}
}
