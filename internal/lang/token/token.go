// Package token defines the lexical tokens of the MiniJ language, the small
// Java-like language that serves as the substrate for the slicing-based
// software-splitting transformation.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Literal kinds carry their text in Token.Lit.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT  // x, foo, Stack
	INT    // 123
	FLOAT  // 1.25
	STRING // "abc"
	CHAR   // 'a' (lexed as an INT with the rune value)

	// Operators and delimiters.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %

	ASSIGN     // =
	PLUSEQ     // +=
	MINUSEQ    // -=
	STAREQ     // *=
	SLASHEQ    // /=
	PERCENTEQ  // %=
	PLUSPLUS   // ++
	MINUSMINUS // --

	EQ  // ==
	NEQ // !=
	LT  // <
	LEQ // <=
	GT  // >
	GEQ // >=

	AND // &&
	OR  // ||
	NOT // !

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	DOT      // .
	QUESTION // ?

	// Keywords.
	kwBegin
	FUNC
	METHOD
	CLASS
	FIELD
	VAR
	IF
	ELSE
	WHILE
	FOR
	RETURN
	BREAK
	CONTINUE
	PRINT
	NEW
	TRUE
	FALSE
	NULL
	INTTYPE
	FLOATTYPE
	BOOLTYPE
	STRINGTYPE
	VOIDTYPE
	LEN
	kwEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF",
	IDENT: "IDENT", INT: "INT", FLOAT: "FLOAT", STRING: "STRING", CHAR: "CHAR",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	ASSIGN: "=", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PERCENTEQ: "%=", PLUSPLUS: "++", MINUSMINUS: "--",
	EQ: "==", NEQ: "!=", LT: "<", LEQ: "<=", GT: ">", GEQ: ">=",
	AND: "&&", OR: "||", NOT: "!",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	COMMA: ",", SEMI: ";", COLON: ":", DOT: ".", QUESTION: "?",
	FUNC: "func", METHOD: "method", CLASS: "class", FIELD: "field", VAR: "var",
	IF: "if", ELSE: "else", WHILE: "while", FOR: "for", RETURN: "return",
	BREAK: "break", CONTINUE: "continue", PRINT: "print", NEW: "new",
	TRUE: "true", FALSE: "false", NULL: "null",
	INTTYPE: "int", FLOATTYPE: "float", BOOLTYPE: "bool",
	STRINGTYPE: "string", VOIDTYPE: "void", LEN: "len",
}

// String returns the textual form of the kind (the operator text or keyword
// for fixed tokens, the class name for variable ones).
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := kwBegin + 1; k < kwEnd; k++ {
		m[kindNames[k]] = k
	}
	return m
}()

// Lookup returns the keyword kind for ident, or IDENT if it is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := Keywords[ident]; ok {
		return k
	}
	return IDENT
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > kwBegin && k < kwEnd }

// IsLiteral reports whether k is an identifier or basic literal.
func (k Kind) IsLiteral() bool {
	switch k {
	case IDENT, INT, FLOAT, STRING, CHAR:
		return true
	}
	return false
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position carries real location information.
func (p Pos) Valid() bool { return p.Line > 0 }

// Token is a single lexical token with its position and literal text.
type Token struct {
	Kind Kind
	Pos  Pos
	Lit  string // literal text for IDENT/INT/FLOAT/STRING/CHAR
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind.IsLiteral() {
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	}
	return t.Kind.String()
}

// Precedence returns the binary-operator precedence of k (higher binds
// tighter), or 0 if k is not a binary operator.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NEQ:
		return 3
	case LT, LEQ, GT, GEQ:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	}
	return 0
}
