package parser

import (
	"strings"
	"testing"

	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/token"
)

const sample = `
var g: int = 10;

class Stack {
    field arr: int[];
    field top: int;
    method push(x: int) {
        arr[top] = x;
        top = top + 1;
    }
    method pop(): int {
        top = top - 1;
        return arr[top];
    }
}

func f(x: int, y: int, z: int): int {
    var a: int = 3 * x + y;
    var b: int = 0;
    var sum: int = 0;
    var i: int = a;
    while (i < z) {
        b = 2 * i;
        sum = sum + b;
        i = i + 1;
    }
    if (sum > 100) {
        sum = sum - 100;
    } else {
        sum = sum + g;
    }
    return sum;
}

func main() {
    var s: Stack = new Stack();
    s.arr = new int[16];
    s.push(f(1, 2, 30));
    print(s.pop());
}
`

func TestParseSample(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Globals) != 1 || prog.Globals[0].Name != "g" {
		t.Errorf("globals: %+v", prog.Globals)
	}
	if len(prog.Classes) != 1 || len(prog.Classes[0].Methods) != 2 || len(prog.Classes[0].Fields) != 2 {
		t.Errorf("classes: %+v", prog.Classes)
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs: got %d", len(prog.Funcs))
	}
	f := prog.Func("f")
	if f == nil || len(f.Params) != 3 {
		t.Fatalf("func f: %+v", f)
	}
	if f.Result.String() != "int" {
		t.Errorf("f result: %s", f.Result)
	}
}

func TestRoundTrip(t *testing.T) {
	prog, err := Parse(sample)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := ast.Format(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n%s", err, text)
	}
	text2 := ast.Format(prog2)
	if text != text2 {
		t.Errorf("round-trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestPrecedence(t *testing.T) {
	tests := []struct{ src, want string }{
		{"1 + 2 * 3", "1 + 2 * 3"},
		{"(1 + 2) * 3", "(1 + 2) * 3"},
		{"1 - 2 - 3", "1 - 2 - 3"},
		{"1 - (2 - 3)", "1 - (2 - 3)"},
		{"a && b || c", "a && b || c"},
		{"a && (b || c)", "a && (b || c)"},
		{"!a && b", "!a && b"},
		{"-a * b", "-a * b"},
		{"-(a * b)", "-(a * b)"},
		{"a < b == c > d", "a < b == c > d"},
		{"a ? b : c", "a ? b : c"},
		{"x % 2 == 0", "x % 2 == 0"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if got := ast.ExprString(e); got != tt.want {
			t.Errorf("%q: printed as %q", tt.src, got)
		}
	}
}

func TestOpAssignDesugar(t *testing.T) {
	prog, err := Parse(`func f() { var x: int = 0; x += 2; x++; x--; x *= 3; }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	body := prog.Funcs[0].Body.Stmts
	if len(body) != 5 {
		t.Fatalf("got %d stmts", len(body))
	}
	as, ok := body[1].(*ast.Assign)
	if !ok {
		t.Fatalf("x += 2 not desugared to Assign: %T", body[1])
	}
	bin, ok := as.Rhs.(*ast.Binary)
	if !ok || bin.Op != token.PLUS {
		t.Fatalf("rhs not x + 2: %s", ast.ExprString(as.Rhs))
	}
	inc := body[2].(*ast.Assign)
	if got := ast.ExprString(inc.Rhs); got != "x + 1" {
		t.Errorf("x++ rhs: %s", got)
	}
	dec := body[3].(*ast.Assign)
	if got := ast.ExprString(dec.Rhs); got != "x - 1" {
		t.Errorf("x-- rhs: %s", got)
	}
}

func TestForLoop(t *testing.T) {
	prog, err := Parse(`func f() { for (var i: int = 0; i < 10; i++) { print(i); } }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f, ok := prog.Funcs[0].Body.Stmts[0].(*ast.For)
	if !ok {
		t.Fatalf("not a for: %T", prog.Funcs[0].Body.Stmts[0])
	}
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		t.Fatalf("for parts missing: %+v", f)
	}
	if _, ok := f.Init.(*ast.VarDecl); !ok {
		t.Errorf("init is %T", f.Init)
	}
}

func TestForLoopEmptyParts(t *testing.T) {
	prog, err := Parse(`func f() { for (;;) { break; } }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := prog.Funcs[0].Body.Stmts[0].(*ast.For)
	if f.Init != nil || f.Cond != nil || f.Post != nil {
		t.Fatalf("expected empty parts: %+v", f)
	}
}

func TestElseIfChain(t *testing.T) {
	prog, err := Parse(`func f(x: int): int {
        if (x < 0) { return -1; } else if (x == 0) { return 0; } else { return 1; }
    }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s := prog.Funcs[0].Body.Stmts[0].(*ast.If)
	if s.Else == nil || len(s.Else.Stmts) != 1 {
		t.Fatalf("else: %+v", s.Else)
	}
	if _, ok := s.Else.Stmts[0].(*ast.If); !ok {
		t.Fatalf("else-if not nested: %T", s.Else.Stmts[0])
	}
}

func TestNewArrayNested(t *testing.T) {
	e, err := ParseExpr("new int[10][]")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	na := e.(*ast.NewArray)
	if na.Elem.String() != "int[]" {
		t.Errorf("elem type: %s", na.Elem)
	}
}

func TestArrayTypeSyntax(t *testing.T) {
	prog, err := Parse(`func f(a: int[][], b: float[]) { }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	params := prog.Funcs[0].Params
	if params[0].Type.String() != "int[][]" {
		t.Errorf("param a: %s", params[0].Type)
	}
	if params[1].Type.String() != "float[]" {
		t.Errorf("param b: %s", params[1].Type)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`func f( { }`,
		`func f() { var ; }`,
		`func f() { if x { } }`,
		`class { }`,
		`func f() { return 1 + ; }`,
		`func f() { x = ; }`,
		`blah`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected syntax error", src)
		}
	}
}

func TestErrorRecoveryFindsMultiple(t *testing.T) {
	src := `
func f() { var x: int = ; }
func g() { y = ; }
`
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	el, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if len(el) < 2 {
		t.Errorf("expected at least 2 errors, got %d: %v", len(el), el)
	}
}

func TestErrorLimit(t *testing.T) {
	// A pathological input must not loop forever or accumulate unbounded errors.
	src := "func f() { " + strings.Repeat("var ; ", 100) + " }"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	if el := err.(ErrorList); len(el) > maxErrors {
		t.Errorf("error count %d exceeds cap %d", len(el), maxErrors)
	}
}

func TestMethodCallChain(t *testing.T) {
	e, err := ParseExpr("a.b.c(1).d")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := ast.ExprString(e); got != "a.b.c(1).d" {
		t.Errorf("printed as %q", got)
	}
}

func TestTernaryNesting(t *testing.T) {
	e, err := ParseExpr("a ? b : c ? d : e")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c := e.(*ast.Cond)
	if _, ok := c.F.(*ast.Cond); !ok {
		t.Errorf("ternary should nest right: %s", ast.ExprString(e))
	}
}

func TestConvertSyntax(t *testing.T) {
	tests := []struct{ src, want string }{
		{"int(x)", "int(x)"},
		{"float(a + b)", "float(a + b)"},
		{"int(float(n) / 2.0)", "int(float(n) / 2.0)"},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if _, ok := e.(*ast.Convert); !ok && tt.src[0] != ' ' {
			if _, inner := e.(*ast.Convert); !inner {
				// top-level must be a conversion for these inputs
				t.Errorf("%q parsed as %T", tt.src, e)
			}
		}
		if got := ast.ExprString(e); got != tt.want {
			t.Errorf("%q printed as %q", tt.src, got)
		}
	}
}

func TestConvertStillParsesTypes(t *testing.T) {
	// int/float remain usable as type names in declarations.
	if _, err := Parse(`func f(a: int, b: float): int { var x: int = int(b); return x + a; }`); err != nil {
		t.Fatal(err)
	}
}
