// Package parser implements a recursive-descent parser for MiniJ.
package parser

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/lexer"
	"slicehide/internal/lang/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates syntax errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 0 {
		return "no errors"
	}
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Parse parses a whole MiniJ program from src.
func Parse(src string) (*ast.Program, error) {
	p := newParser(src)
	prog := p.parseProgram()
	if len(p.errors) > 0 {
		return prog, p.errors
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	p := newParser(src)
	e := p.parseExpr()
	p.expect(token.EOF)
	if len(p.errors) > 0 {
		return e, p.errors
	}
	return e, nil
}

// MustParse parses src and panics on error; for tests and embedded corpora.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lex    *lexer.Lexer
	tok    token.Token
	peeked *token.Token
	errors ErrorList
}

const maxErrors = 20

func newParser(src string) *parser {
	p := &parser{lex: lexer.New(src)}
	p.next()
	return p
}

var errTooMany = errors.New("too many errors")

func (p *parser) next() {
	if p.peeked != nil {
		p.tok = *p.peeked
		p.peeked = nil
		return
	}
	p.tok = p.lex.Next()
}

func (p *parser) peek() token.Token {
	if p.peeked == nil {
		t := p.lex.Next()
		p.peeked = &t
	}
	return *p.peeked
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errors) >= maxErrors {
		panic(errTooMany)
	}
	p.errors = append(p.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume; caller-driven recovery.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync(stop ...token.Kind) {
	stopSet := map[token.Kind]bool{token.EOF: true}
	for _, k := range stop {
		stopSet[k] = true
	}
	for !stopSet[p.tok.Kind] {
		p.next()
	}
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	defer func() {
		if r := recover(); r != nil && r != any(errTooMany) {
			panic(r)
		}
	}()
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.VAR:
			prog.Globals = append(prog.Globals, p.parseGlobal())
		case token.CLASS:
			prog.Classes = append(prog.Classes, p.parseClass())
		case token.FUNC:
			prog.Funcs = append(prog.Funcs, p.parseFunc(token.FUNC))
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			p.next()
			p.sync(token.VAR, token.CLASS, token.FUNC)
		}
	}
	return prog
}

func (p *parser) parseGlobal() *ast.GlobalDecl {
	p.expect(token.VAR)
	name := p.expect(token.IDENT)
	p.expect(token.COLON)
	typ := p.parseType()
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return &ast.GlobalDecl{NPos: name.Pos, Name: name.Lit, Type: typ, Init: init}
}

func (p *parser) parseClass() *ast.ClassDecl {
	kw := p.expect(token.CLASS)
	name := p.expect(token.IDENT)
	p.expect(token.LBRACE)
	c := &ast.ClassDecl{NPos: kw.Pos, Name: name.Lit}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.FIELD:
			p.next()
			fname := p.expect(token.IDENT)
			p.expect(token.COLON)
			ftyp := p.parseType()
			p.expect(token.SEMI)
			c.Fields = append(c.Fields, &ast.FieldDecl{NPos: fname.Pos, Name: fname.Lit, Type: ftyp})
		case token.METHOD:
			c.Methods = append(c.Methods, p.parseFunc(token.METHOD))
		default:
			p.errorf(p.tok.Pos, "expected field or method, found %s", p.tok)
			p.next()
			p.sync(token.FIELD, token.METHOD, token.RBRACE)
		}
	}
	p.expect(token.RBRACE)
	return c
}

func (p *parser) parseFunc(kw token.Kind) *ast.FuncDecl {
	p.expect(kw)
	name := p.expect(token.IDENT)
	p.expect(token.LPAREN)
	var params []ast.Param
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		if len(params) > 0 {
			p.expect(token.COMMA)
		}
		pn := p.expect(token.IDENT)
		p.expect(token.COLON)
		pt := p.parseType()
		params = append(params, ast.Param{NPos: pn.Pos, Name: pn.Lit, Type: pt})
	}
	p.expect(token.RPAREN)
	var result ast.Type = &ast.BasicType{TPos: name.Pos, Kind: ast.Void}
	if p.accept(token.COLON) {
		result = p.parseType()
	}
	body := p.parseBlock()
	return &ast.FuncDecl{NPos: name.Pos, Name: name.Lit, Params: params, Result: result, Body: body}
}

func (p *parser) parseType() ast.Type {
	pos := p.tok.Pos
	var t ast.Type
	switch p.tok.Kind {
	case token.INTTYPE:
		p.next()
		t = &ast.BasicType{TPos: pos, Kind: ast.Int}
	case token.FLOATTYPE:
		p.next()
		t = &ast.BasicType{TPos: pos, Kind: ast.Float}
	case token.BOOLTYPE:
		p.next()
		t = &ast.BasicType{TPos: pos, Kind: ast.Bool}
	case token.STRINGTYPE:
		p.next()
		t = &ast.BasicType{TPos: pos, Kind: ast.String}
	case token.VOIDTYPE:
		p.next()
		t = &ast.BasicType{TPos: pos, Kind: ast.Void}
	case token.IDENT:
		t = &ast.ClassType{TPos: pos, Name: p.tok.Lit}
		p.next()
	default:
		p.errorf(pos, "expected type, found %s", p.tok)
		p.next()
		return &ast.BasicType{TPos: pos, Kind: ast.Int}
	}
	for p.tok.Kind == token.LBRACK && p.peek().Kind == token.RBRACK {
		p.next()
		p.next()
		t = &ast.ArrayType{TPos: pos, Elem: t}
	}
	return t
}

func (p *parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBRACE)
	b := &ast.Block{BPos: lb.Pos}
	for p.tok.Kind != token.RBRACE && p.tok.Kind != token.EOF {
		before := p.tok
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.tok == before && len(p.errors) > 0 {
			// No progress; skip a token to avoid looping.
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.VAR:
		return p.parseVarDecl()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.FOR:
		return p.parseFor()
	case token.RETURN:
		r := p.tok
		p.next()
		var v ast.Expr
		if p.tok.Kind != token.SEMI {
			v = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.Return{RPos: r.Pos, Value: v}
	case token.BREAK:
		b := p.tok
		p.next()
		p.expect(token.SEMI)
		return &ast.Break{BPos: b.Pos}
	case token.CONTINUE:
		c := p.tok
		p.next()
		p.expect(token.SEMI)
		return &ast.Continue{CPos: c.Pos}
	case token.PRINT:
		pr := p.tok
		p.next()
		p.expect(token.LPAREN)
		var args []ast.Expr
		for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
			if len(args) > 0 {
				p.expect(token.COMMA)
			}
			args = append(args, p.parseExpr())
		}
		p.expect(token.RPAREN)
		p.expect(token.SEMI)
		return &ast.Print{PPos: pr.Pos, Args: args}
	case token.LBRACE:
		return p.parseBlock()
	}
	s := p.parseSimpleStmt()
	p.expect(token.SEMI)
	return s
}

func (p *parser) parseVarDecl() *ast.VarDecl {
	p.expect(token.VAR)
	name := p.expect(token.IDENT)
	p.expect(token.COLON)
	typ := p.parseType()
	var init ast.Expr
	if p.accept(token.ASSIGN) {
		init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return &ast.VarDecl{NPos: name.Pos, Name: name.Lit, Type: typ, Init: init}
}

// parseSimpleStmt parses an assignment, op-assignment, increment, or
// expression statement (without the trailing semicolon).
func (p *parser) parseSimpleStmt() ast.Stmt {
	lhs := p.parseExpr()
	switch p.tok.Kind {
	case token.ASSIGN:
		p.next()
		rhs := p.parseExpr()
		return &ast.Assign{Lhs: lhs, Rhs: rhs}
	case token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ, token.PERCENTEQ:
		op := opOfAssign(p.tok.Kind)
		p.next()
		rhs := p.parseExpr()
		return &ast.Assign{Lhs: lhs, Rhs: &ast.Binary{Op: op, X: lhs, Y: rhs}}
	case token.PLUSPLUS:
		p.next()
		one := &ast.IntLit{LPos: lhs.Pos(), Value: 1}
		return &ast.Assign{Lhs: lhs, Rhs: &ast.Binary{Op: token.PLUS, X: lhs, Y: one}}
	case token.MINUSMINUS:
		p.next()
		one := &ast.IntLit{LPos: lhs.Pos(), Value: 1}
		return &ast.Assign{Lhs: lhs, Rhs: &ast.Binary{Op: token.MINUS, X: lhs, Y: one}}
	}
	return &ast.ExprStmt{X: lhs}
}

func opOfAssign(k token.Kind) token.Kind {
	switch k {
	case token.PLUSEQ:
		return token.PLUS
	case token.MINUSEQ:
		return token.MINUS
	case token.STAREQ:
		return token.STAR
	case token.SLASHEQ:
		return token.SLASH
	case token.PERCENTEQ:
		return token.PERCENT
	}
	return token.ILLEGAL
}

func (p *parser) parseIf() *ast.If {
	kw := p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseBlock()
	var els *ast.Block
	if p.accept(token.ELSE) {
		if p.tok.Kind == token.IF {
			inner := p.parseIf()
			els = &ast.Block{BPos: inner.IPos, Stmts: []ast.Stmt{inner}}
		} else {
			els = p.parseBlock()
		}
	}
	return &ast.If{IPos: kw.Pos, Cond: cond, Then: then, Else: els}
}

func (p *parser) parseWhile() *ast.While {
	kw := p.expect(token.WHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseBlock()
	return &ast.While{WPos: kw.Pos, Cond: cond, Body: body}
}

func (p *parser) parseFor() *ast.For {
	kw := p.expect(token.FOR)
	p.expect(token.LPAREN)
	f := &ast.For{FPos: kw.Pos}
	if p.tok.Kind != token.SEMI {
		if p.tok.Kind == token.VAR {
			p.next()
			name := p.expect(token.IDENT)
			p.expect(token.COLON)
			typ := p.parseType()
			var init ast.Expr
			if p.accept(token.ASSIGN) {
				init = p.parseExpr()
			}
			f.Init = &ast.VarDecl{NPos: name.Pos, Name: name.Lit, Type: typ, Init: init}
		} else {
			f.Init = p.parseSimpleStmt()
		}
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.SEMI {
		f.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if p.tok.Kind != token.RPAREN {
		f.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	f.Body = p.parseBlock()
	return f
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

func (p *parser) parseExpr() ast.Expr {
	return p.parseCond()
}

func (p *parser) parseCond() ast.Expr {
	c := p.parseBinary(1)
	if p.accept(token.QUESTION) {
		t := p.parseCond()
		p.expect(token.COLON)
		f := p.parseCond()
		return &ast.Cond{C: c, T: t, F: f}
	}
	return c
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := p.tok.Kind.Precedence()
		if prec < minPrec {
			return x
		}
		op := p.tok.Kind
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.MINUS, token.NOT:
		op := p.tok
		p.next()
		x := p.parseUnary()
		return &ast.Unary{OpPos: op.Pos, Op: op.Kind, X: x}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.tok.Kind {
		case token.LBRACK:
			p.next()
			i := p.parseExpr()
			p.expect(token.RBRACK)
			x = &ast.Index{Arr: x, I: i}
		case token.DOT:
			p.next()
			name := p.expect(token.IDENT)
			if p.tok.Kind == token.LPAREN {
				args := p.parseArgs()
				x = &ast.MethodCall{Recv: x, Name: name.Lit, NPos: name.Pos, Args: args}
			} else {
				x = &ast.FieldAccess{Obj: x, Name: name.Lit, NPos: name.Pos}
			}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	for p.tok.Kind != token.RPAREN && p.tok.Kind != token.EOF {
		if len(args) > 0 {
			p.expect(token.COMMA)
		}
		args = append(args, p.parseExpr())
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok
	switch t.Kind {
	case token.INT, token.CHAR:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LPos: t.Pos, Value: v}
	case token.FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid float literal %q", t.Lit)
		}
		return &ast.FloatLit{LPos: t.Pos, Value: v}
	case token.STRING:
		p.next()
		return &ast.StringLit{LPos: t.Pos, Value: t.Lit}
	case token.TRUE:
		p.next()
		return &ast.BoolLit{LPos: t.Pos, Value: true}
	case token.FALSE:
		p.next()
		return &ast.BoolLit{LPos: t.Pos, Value: false}
	case token.NULL:
		p.next()
		return &ast.NullLit{LPos: t.Pos}
	case token.IDENT:
		p.next()
		if p.tok.Kind == token.LPAREN {
			args := p.parseArgs()
			return &ast.Call{NPos: t.Pos, Name: t.Lit, Args: args}
		}
		return &ast.Ident{NPos: t.Pos, Name: t.Lit}
	case token.LEN:
		p.next()
		p.expect(token.LPAREN)
		arr := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.LenExpr{NPos: t.Pos, Arr: arr}
	case token.INTTYPE, token.FLOATTYPE:
		// Numeric conversion: int(e) / float(e).
		kind := ast.Int
		if t.Kind == token.FLOATTYPE {
			kind = ast.Float
		}
		p.next()
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.Convert{NPos: t.Pos, To: kind, X: x}
	case token.NEW:
		p.next()
		if p.tok.Kind == token.IDENT && p.peek().Kind == token.LPAREN {
			name := p.expect(token.IDENT)
			p.expect(token.LPAREN)
			p.expect(token.RPAREN)
			return &ast.NewObject{NPos: t.Pos, Name: name.Lit}
		}
		elem := p.parseType()
		// The innermost LBRACK carries the size: new int[10].
		p.expect(token.LBRACK)
		size := p.parseExpr()
		p.expect(token.RBRACK)
		// Trailing [] pairs add nesting: new int[10][] is an array of int[].
		for p.tok.Kind == token.LBRACK && p.peek().Kind == token.RBRACK {
			p.next()
			p.next()
			elem = &ast.ArrayType{TPos: t.Pos, Elem: elem}
		}
		return &ast.NewArray{NPos: t.Pos, Elem: elem, Size: size}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.IntLit{LPos: t.Pos, Value: 0}
}
