// Package ast defines the abstract syntax tree for MiniJ programs.
package ast

import (
	"slicehide/internal/lang/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types

// Type is a syntactic type expression.
type Type interface {
	Node
	typeNode()
	String() string
}

// BasicKind enumerates the primitive types.
type BasicKind int

// Primitive type kinds.
const (
	Int BasicKind = iota
	Float
	Bool
	String
	Void
)

func (k BasicKind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	case Void:
		return "void"
	}
	return "?"
}

// BasicType is a primitive type such as int or bool.
type BasicType struct {
	TPos token.Pos
	Kind BasicKind
}

func (t *BasicType) Pos() token.Pos { return t.TPos }
func (t *BasicType) typeNode()      {}
func (t *BasicType) String() string { return t.Kind.String() }

// ArrayType is an array of Elem values.
type ArrayType struct {
	TPos token.Pos
	Elem Type
}

func (t *ArrayType) Pos() token.Pos { return t.TPos }
func (t *ArrayType) typeNode()      {}
func (t *ArrayType) String() string { return t.Elem.String() + "[]" }

// ClassType names a user-defined class.
type ClassType struct {
	TPos token.Pos
	Name string
}

func (t *ClassType) Pos() token.Pos { return t.TPos }
func (t *ClassType) typeNode()      {}
func (t *ClassType) String() string { return t.Name }

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	LPos  token.Pos
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LPos  token.Pos
	Value float64
}

// BoolLit is true or false.
type BoolLit struct {
	LPos  token.Pos
	Value bool
}

// StringLit is a string literal (already unescaped).
type StringLit struct {
	LPos  token.Pos
	Value string
}

// NullLit is the null reference literal.
type NullLit struct {
	LPos token.Pos
}

// Ident is a reference to a named variable, parameter, global, or field.
type Ident struct {
	NPos token.Pos
	Name string
}

// Unary applies a prefix operator (-, !).
type Unary struct {
	OpPos token.Pos
	Op    token.Kind
	X     Expr
}

// Binary applies an infix operator.
type Binary struct {
	Op   token.Kind
	X, Y Expr
}

// Index reads Arr[I].
type Index struct {
	Arr Expr
	I   Expr
}

// FieldAccess reads Obj.Name.
type FieldAccess struct {
	Obj  Expr
	Name string
	NPos token.Pos
}

// Call invokes a top-level function: Name(Args...).
type Call struct {
	NPos token.Pos
	Name string
	Args []Expr
}

// MethodCall invokes Recv.Name(Args...).
type MethodCall struct {
	Recv Expr
	Name string
	NPos token.Pos
	Args []Expr
}

// NewObject instantiates a class: new Name().
type NewObject struct {
	NPos token.Pos
	Name string
}

// NewArray allocates an array: new Elem[Size].
type NewArray struct {
	NPos token.Pos
	Elem Type
	Size Expr
}

// LenExpr is the built-in len(arr).
type LenExpr struct {
	NPos token.Pos
	Arr  Expr
}

// Cond is the ternary conditional C ? T : F.
type Cond struct {
	C, T, F Expr
}

// Convert is a numeric conversion: int(X) or float(X).
type Convert struct {
	NPos token.Pos
	To   BasicKind // Int or Float
	X    Expr
}

func (e *IntLit) Pos() token.Pos      { return e.LPos }
func (e *FloatLit) Pos() token.Pos    { return e.LPos }
func (e *BoolLit) Pos() token.Pos     { return e.LPos }
func (e *StringLit) Pos() token.Pos   { return e.LPos }
func (e *NullLit) Pos() token.Pos     { return e.LPos }
func (e *Ident) Pos() token.Pos       { return e.NPos }
func (e *Unary) Pos() token.Pos       { return e.OpPos }
func (e *Binary) Pos() token.Pos      { return e.X.Pos() }
func (e *Index) Pos() token.Pos       { return e.Arr.Pos() }
func (e *FieldAccess) Pos() token.Pos { return e.Obj.Pos() }
func (e *Call) Pos() token.Pos        { return e.NPos }
func (e *MethodCall) Pos() token.Pos  { return e.Recv.Pos() }
func (e *NewObject) Pos() token.Pos   { return e.NPos }
func (e *NewArray) Pos() token.Pos    { return e.NPos }
func (e *LenExpr) Pos() token.Pos     { return e.NPos }
func (e *Cond) Pos() token.Pos        { return e.C.Pos() }
func (e *Convert) Pos() token.Pos     { return e.NPos }

func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*BoolLit) exprNode()     {}
func (*StringLit) exprNode()   {}
func (*NullLit) exprNode()     {}
func (*Ident) exprNode()       {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Index) exprNode()       {}
func (*FieldAccess) exprNode() {}
func (*Call) exprNode()        {}
func (*MethodCall) exprNode()  {}
func (*NewObject) exprNode()   {}
func (*NewArray) exprNode()    {}
func (*LenExpr) exprNode()     {}
func (*Cond) exprNode()        {}
func (*Convert) exprNode()     {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// VarDecl declares a local variable with an optional initializer.
type VarDecl struct {
	NPos token.Pos
	Name string
	Type Type
	Init Expr // may be nil
}

// Assign stores the value of Rhs into Lhs (an Ident, Index, or FieldAccess).
type Assign struct {
	Lhs Expr
	Rhs Expr
}

// If is a conditional with an optional else branch.
type If struct {
	IPos token.Pos
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// While is a pre-tested loop.
type While struct {
	WPos token.Pos
	Cond Expr
	Body *Block
}

// For is a C-style loop; Init/Post are simple statements, possibly nil.
type For struct {
	FPos token.Pos
	Init Stmt // VarDecl, Assign, or nil
	Cond Expr // may be nil (infinite)
	Post Stmt // Assign or nil
	Body *Block
}

// Return exits the enclosing function with an optional value.
type Return struct {
	RPos  token.Pos
	Value Expr // may be nil
}

// Break exits the innermost loop.
type Break struct{ BPos token.Pos }

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ CPos token.Pos }

// Print writes its arguments to the program output.
type Print struct {
	PPos token.Pos
	Args []Expr
}

// ExprStmt evaluates an expression (a call) for its side effects.
type ExprStmt struct {
	X Expr
}

// Block is a brace-delimited statement sequence.
type Block struct {
	BPos  token.Pos
	Stmts []Stmt
}

func (s *VarDecl) Pos() token.Pos  { return s.NPos }
func (s *Assign) Pos() token.Pos   { return s.Lhs.Pos() }
func (s *If) Pos() token.Pos       { return s.IPos }
func (s *While) Pos() token.Pos    { return s.WPos }
func (s *For) Pos() token.Pos      { return s.FPos }
func (s *Return) Pos() token.Pos   { return s.RPos }
func (s *Break) Pos() token.Pos    { return s.BPos }
func (s *Continue) Pos() token.Pos { return s.CPos }
func (s *Print) Pos() token.Pos    { return s.PPos }
func (s *ExprStmt) Pos() token.Pos { return s.X.Pos() }
func (s *Block) Pos() token.Pos    { return s.BPos }

func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Print) stmtNode()    {}
func (*ExprStmt) stmtNode() {}
func (*Block) stmtNode()    {}

// ---------------------------------------------------------------------------
// Declarations

// Param is a function or method parameter.
type Param struct {
	NPos token.Pos
	Name string
	Type Type
}

// FuncDecl is a top-level function (or a class method when inside a class).
type FuncDecl struct {
	NPos   token.Pos
	Name   string
	Params []Param
	Result Type // never nil; void if omitted
	Body   *Block
}

func (d *FuncDecl) Pos() token.Pos { return d.NPos }

// FieldDecl is a class field.
type FieldDecl struct {
	NPos token.Pos
	Name string
	Type Type
}

func (d *FieldDecl) Pos() token.Pos { return d.NPos }

// ClassDecl groups fields and methods.
type ClassDecl struct {
	NPos    token.Pos
	Name    string
	Fields  []*FieldDecl
	Methods []*FuncDecl
}

func (d *ClassDecl) Pos() token.Pos { return d.NPos }

// GlobalDecl is a module-level variable.
type GlobalDecl struct {
	NPos token.Pos
	Name string
	Type Type
	Init Expr // may be nil
}

func (d *GlobalDecl) Pos() token.Pos { return d.NPos }

// Program is a whole MiniJ compilation unit.
type Program struct {
	Globals []*GlobalDecl
	Classes []*ClassDecl
	Funcs   []*FuncDecl
}

// Func returns the top-level function named name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Class returns the class named name, or nil.
func (p *Program) Class(name string) *ClassDecl {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}
