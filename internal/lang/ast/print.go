package ast

import (
	"fmt"
	"strings"
)

// Format renders the program back to MiniJ source text. The output parses to
// an equivalent program, which the parser round-trip tests rely on.
func Format(p *Program) string {
	var b strings.Builder
	pr := printer{w: &b}
	for _, g := range p.Globals {
		pr.global(g)
	}
	for _, c := range p.Classes {
		pr.class(c)
	}
	for _, f := range p.Funcs {
		pr.funcDecl("func", f)
	}
	return b.String()
}

// FormatStmt renders a single statement at the given indent level.
func FormatStmt(s Stmt, indent int) string {
	var b strings.Builder
	pr := printer{w: &b, ind: indent}
	pr.stmt(s)
	return b.String()
}

// ExprString renders an expression as source text.
func ExprString(e Expr) string {
	var b strings.Builder
	(&printer{w: &b}).expr(e, 0)
	return b.String()
}

type printer struct {
	w   *strings.Builder
	ind int
}

func (p *printer) line(format string, args ...any) {
	p.w.WriteString(strings.Repeat("    ", p.ind))
	fmt.Fprintf(p.w, format, args...)
	p.w.WriteByte('\n')
}

func (p *printer) global(g *GlobalDecl) {
	if g.Init != nil {
		p.line("var %s: %s = %s;", g.Name, g.Type, ExprString(g.Init))
	} else {
		p.line("var %s: %s;", g.Name, g.Type)
	}
}

func (p *printer) class(c *ClassDecl) {
	p.line("class %s {", c.Name)
	p.ind++
	for _, f := range c.Fields {
		p.line("field %s: %s;", f.Name, f.Type)
	}
	for _, m := range c.Methods {
		p.funcDecl("method", m)
	}
	p.ind--
	p.line("}")
}

func (p *printer) funcDecl(kw string, f *FuncDecl) {
	params := make([]string, len(f.Params))
	for i, pa := range f.Params {
		params[i] = fmt.Sprintf("%s: %s", pa.Name, pa.Type)
	}
	sig := fmt.Sprintf("%s %s(%s)", kw, f.Name, strings.Join(params, ", "))
	if bt, ok := f.Result.(*BasicType); !ok || bt.Kind != Void {
		sig += ": " + f.Result.String()
	}
	p.line("%s {", sig)
	p.ind++
	for _, s := range f.Body.Stmts {
		p.stmt(s)
	}
	p.ind--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarDecl:
		if s.Init != nil {
			p.line("var %s: %s = %s;", s.Name, s.Type, ExprString(s.Init))
		} else {
			p.line("var %s: %s;", s.Name, s.Type)
		}
	case *Assign:
		p.line("%s = %s;", ExprString(s.Lhs), ExprString(s.Rhs))
	case *If:
		p.line("if (%s) {", ExprString(s.Cond))
		p.ind++
		for _, t := range s.Then.Stmts {
			p.stmt(t)
		}
		p.ind--
		if s.Else != nil {
			p.line("} else {")
			p.ind++
			for _, t := range s.Else.Stmts {
				p.stmt(t)
			}
			p.ind--
		}
		p.line("}")
	case *While:
		p.line("while (%s) {", ExprString(s.Cond))
		p.ind++
		for _, t := range s.Body.Stmts {
			p.stmt(t)
		}
		p.ind--
		p.line("}")
	case *For:
		init, cond, post := "", "", ""
		if s.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(FormatStmt(s.Init, 0)), ";")
		}
		if s.Cond != nil {
			cond = ExprString(s.Cond)
		}
		if s.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(FormatStmt(s.Post, 0)), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.ind++
		for _, t := range s.Body.Stmts {
			p.stmt(t)
		}
		p.ind--
		p.line("}")
	case *Return:
		if s.Value != nil {
			p.line("return %s;", ExprString(s.Value))
		} else {
			p.line("return;")
		}
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	case *Print:
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			args[i] = ExprString(a)
		}
		p.line("print(%s);", strings.Join(args, ", "))
	case *ExprStmt:
		p.line("%s;", ExprString(s.X))
	case *Block:
		p.line("{")
		p.ind++
		for _, t := range s.Stmts {
			p.stmt(t)
		}
		p.ind--
		p.line("}")
	default:
		p.line("/* unknown stmt %T */", s)
	}
}

func (p *printer) expr(e Expr, prec int) {
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(p.w, "%d", e.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", e.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.w.WriteString(s)
	case *BoolLit:
		fmt.Fprintf(p.w, "%t", e.Value)
	case *StringLit:
		fmt.Fprintf(p.w, "%q", e.Value)
	case *NullLit:
		p.w.WriteString("null")
	case *Ident:
		p.w.WriteString(e.Name)
	case *Unary:
		p.w.WriteString(e.Op.String())
		p.expr(e.X, 7)
	case *Binary:
		op := e.Op.Precedence()
		if op < prec {
			p.w.WriteByte('(')
		}
		p.expr(e.X, op)
		fmt.Fprintf(p.w, " %s ", e.Op)
		p.expr(e.Y, op+1)
		if op < prec {
			p.w.WriteByte(')')
		}
	case *Index:
		p.expr(e.Arr, 8)
		p.w.WriteByte('[')
		p.expr(e.I, 0)
		p.w.WriteByte(']')
	case *FieldAccess:
		p.expr(e.Obj, 8)
		p.w.WriteByte('.')
		p.w.WriteString(e.Name)
	case *Call:
		p.w.WriteString(e.Name)
		p.args(e.Args)
	case *MethodCall:
		p.expr(e.Recv, 8)
		p.w.WriteByte('.')
		p.w.WriteString(e.Name)
		p.args(e.Args)
	case *NewObject:
		fmt.Fprintf(p.w, "new %s()", e.Name)
	case *NewArray:
		fmt.Fprintf(p.w, "new %s[", e.Elem)
		p.expr(e.Size, 0)
		p.w.WriteByte(']')
	case *LenExpr:
		p.w.WriteString("len(")
		p.expr(e.Arr, 0)
		p.w.WriteByte(')')
	case *Convert:
		p.w.WriteString(e.To.String())
		p.w.WriteByte('(')
		p.expr(e.X, 0)
		p.w.WriteByte(')')
	case *Cond:
		if prec > 0 {
			p.w.WriteByte('(')
		}
		p.expr(e.C, 1)
		p.w.WriteString(" ? ")
		p.expr(e.T, 1)
		p.w.WriteString(" : ")
		p.expr(e.F, 1)
		if prec > 0 {
			p.w.WriteByte(')')
		}
	default:
		fmt.Fprintf(p.w, "/* unknown expr %T */", e)
	}
}

func (p *printer) args(args []Expr) {
	p.w.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			p.w.WriteString(", ")
		}
		p.expr(a, 0)
	}
	p.w.WriteByte(')')
}

// Walk traverses the statement tree rooted at s in pre-order, calling fn for
// every statement. If fn returns false the children of s are skipped.
func Walk(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch s := s.(type) {
	case *If:
		for _, t := range s.Then.Stmts {
			Walk(t, fn)
		}
		if s.Else != nil {
			for _, t := range s.Else.Stmts {
				Walk(t, fn)
			}
		}
	case *While:
		for _, t := range s.Body.Stmts {
			Walk(t, fn)
		}
	case *For:
		if s.Init != nil {
			Walk(s.Init, fn)
		}
		if s.Post != nil {
			Walk(s.Post, fn)
		}
		for _, t := range s.Body.Stmts {
			Walk(t, fn)
		}
	case *Block:
		for _, t := range s.Stmts {
			Walk(t, fn)
		}
	}
}

// WalkExprs visits every expression in the statement tree rooted at s.
func WalkExprs(s Stmt, fn func(Expr)) {
	Walk(s, func(st Stmt) bool {
		switch st := st.(type) {
		case *VarDecl:
			if st.Init != nil {
				WalkExpr(st.Init, fn)
			}
		case *Assign:
			WalkExpr(st.Lhs, fn)
			WalkExpr(st.Rhs, fn)
		case *If:
			WalkExpr(st.Cond, fn)
		case *While:
			WalkExpr(st.Cond, fn)
		case *For:
			if st.Cond != nil {
				WalkExpr(st.Cond, fn)
			}
		case *Return:
			if st.Value != nil {
				WalkExpr(st.Value, fn)
			}
		case *Print:
			for _, a := range st.Args {
				WalkExpr(a, fn)
			}
		case *ExprStmt:
			WalkExpr(st.X, fn)
		}
		return true
	})
}

// WalkExpr visits e and all its subexpressions in pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Unary:
		WalkExpr(e.X, fn)
	case *Binary:
		WalkExpr(e.X, fn)
		WalkExpr(e.Y, fn)
	case *Index:
		WalkExpr(e.Arr, fn)
		WalkExpr(e.I, fn)
	case *FieldAccess:
		WalkExpr(e.Obj, fn)
	case *Call:
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *MethodCall:
		WalkExpr(e.Recv, fn)
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *NewArray:
		WalkExpr(e.Size, fn)
	case *LenExpr:
		WalkExpr(e.Arr, fn)
	case *Cond:
		WalkExpr(e.C, fn)
		WalkExpr(e.T, fn)
		WalkExpr(e.F, fn)
	case *Convert:
		WalkExpr(e.X, fn)
	}
}

// HasCall reports whether the expression contains a function or method call
// or an allocation (entities that can never move into a hidden component).
func HasCall(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		switch x.(type) {
		case *Call, *MethodCall, *NewObject, *NewArray:
			found = true
		}
	})
	return found
}
