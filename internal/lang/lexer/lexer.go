// Package lexer implements a hand-written scanner for MiniJ source text.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"slicehide/internal/lang/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniJ source text into tokens.
type Lexer struct {
	src    string
	off    int // byte offset of next rune
	ch     rune
	chLen  int
	line   int
	col    int
	errors []*Error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	l := &Lexer{src: src, line: 1, col: 0}
	l.advance()
	return l
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errors }

const eof = rune(-1)

func (l *Lexer) advance() {
	l.off += l.chLen
	if l.off >= len(l.src) {
		l.ch, l.chLen = eof, 0
		l.col++
		return
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	l.ch, l.chLen = r, w
}

func (l *Lexer) peek() rune {
	if l.off+l.chLen >= len(l.src) {
		return eof
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off+l.chLen:])
	return r
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) skipSpaceAndComments() {
	for {
		for l.ch == ' ' || l.ch == '\t' || l.ch == '\r' || l.ch == '\n' {
			l.advance()
		}
		if l.ch == '/' && l.peek() == '/' {
			for l.ch != '\n' && l.ch != eof {
				l.advance()
			}
			continue
		}
		if l.ch == '/' && l.peek() == '*' {
			pos := l.pos()
			l.advance() // '/'
			l.advance() // '*'
			closed := false
			for l.ch != eof {
				if l.ch == '*' && l.peek() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
			continue
		}
		return
	}
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isLetter(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

// Next returns the next token. At end of input it returns an EOF token
// forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	switch {
	case l.ch == eof:
		return token.Token{Kind: token.EOF, Pos: pos}
	case isLetter(l.ch):
		return l.scanIdent(pos)
	case isDigit(l.ch):
		return l.scanNumber(pos)
	case l.ch == '"':
		return l.scanString(pos)
	case l.ch == '\'':
		return l.scanChar(pos)
	}
	return l.scanOperator(pos)
}

// All scans the remaining input and returns every token up to and including
// EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for isLetter(l.ch) || isDigit(l.ch) {
		l.advance()
	}
	lit := l.src[start:l.off]
	kind := token.Lookup(lit)
	if kind != token.IDENT {
		return token.Token{Kind: kind, Pos: pos, Lit: lit}
	}
	return token.Token{Kind: token.IDENT, Pos: pos, Lit: lit}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	for isDigit(l.ch) {
		l.advance()
	}
	kind := token.INT
	if l.ch == '.' && isDigit(l.peek()) {
		kind = token.FLOAT
		l.advance()
		for isDigit(l.ch) {
			l.advance()
		}
	}
	if l.ch == 'e' || l.ch == 'E' {
		if next := l.peek(); isDigit(next) || next == '+' || next == '-' {
			kind = token.FLOAT
			l.advance()
			if l.ch == '+' || l.ch == '-' {
				l.advance()
			}
			if !isDigit(l.ch) {
				l.errorf(pos, "malformed exponent in numeric literal")
			}
			for isDigit(l.ch) {
				l.advance()
			}
		}
	}
	return token.Token{Kind: kind, Pos: pos, Lit: l.src[start:l.off]}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var b strings.Builder
	for l.ch != '"' {
		if l.ch == eof || l.ch == '\n' {
			l.errorf(pos, "unterminated string literal")
			return token.Token{Kind: token.STRING, Pos: pos, Lit: b.String()}
		}
		if l.ch == '\\' {
			l.advance()
			switch l.ch {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '0':
				b.WriteByte(0)
			default:
				l.errorf(l.pos(), "unknown escape \\%c", l.ch)
				b.WriteRune(l.ch)
			}
			l.advance()
			continue
		}
		b.WriteRune(l.ch)
		l.advance()
	}
	l.advance() // closing quote
	return token.Token{Kind: token.STRING, Pos: pos, Lit: b.String()}
}

func (l *Lexer) scanChar(pos token.Pos) token.Token {
	l.advance() // opening quote
	var r rune
	if l.ch == '\\' {
		l.advance()
		switch l.ch {
		case 'n':
			r = '\n'
		case 't':
			r = '\t'
		case '\\':
			r = '\\'
		case '\'':
			r = '\''
		case '"':
			r = '"'
		case '0':
			r = 0
		default:
			l.errorf(l.pos(), "unknown escape \\%c", l.ch)
			r = l.ch
		}
		l.advance()
	} else if l.ch == eof || l.ch == '\n' {
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.CHAR, Pos: pos, Lit: "0"}
	} else {
		r = l.ch
		l.advance()
	}
	if l.ch != '\'' {
		l.errorf(pos, "unterminated character literal")
	} else {
		l.advance()
	}
	return token.Token{Kind: token.CHAR, Pos: pos, Lit: fmt.Sprintf("%d", r)}
}

func (l *Lexer) scanOperator(pos token.Pos) token.Token {
	ch := l.ch
	l.advance()
	two := func(next rune, ifTwo, ifOne token.Kind) token.Token {
		if l.ch == next {
			l.advance()
			return token.Token{Kind: ifTwo, Pos: pos}
		}
		return token.Token{Kind: ifOne, Pos: pos}
	}
	switch ch {
	case '+':
		if l.ch == '+' {
			l.advance()
			return token.Token{Kind: token.PLUSPLUS, Pos: pos}
		}
		return two('=', token.PLUSEQ, token.PLUS)
	case '-':
		if l.ch == '-' {
			l.advance()
			return token.Token{Kind: token.MINUSMINUS, Pos: pos}
		}
		return two('=', token.MINUSEQ, token.MINUS)
	case '*':
		return two('=', token.STAREQ, token.STAR)
	case '/':
		return two('=', token.SLASHEQ, token.SLASH)
	case '%':
		return two('=', token.PERCENTEQ, token.PERCENT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LT)
	case '>':
		return two('=', token.GEQ, token.GT)
	case '&':
		if l.ch == '&' {
			l.advance()
			return token.Token{Kind: token.AND, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean &&?)", ch)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(ch)}
	case '|':
		if l.ch == '|' {
			l.advance()
			return token.Token{Kind: token.OR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (did you mean ||?)", ch)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(ch)}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", ch)
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Lit: string(ch)}
}
