package lexer

import (
	"strings"
	"testing"

	"slicehide/internal/lang/token"
)

func kinds(src string) []token.Kind {
	l := New(src)
	var ks []token.Kind
	for _, t := range l.All() {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestOperators(t *testing.T) {
	src := "+ - * / % = += -= *= /= %= ++ -- == != < <= > >= && || ! ( ) { } [ ] , ; : . ?"
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.ASSIGN, token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ,
		token.PERCENTEQ, token.PLUSPLUS, token.MINUSMINUS,
		token.EQ, token.NEQ, token.LT, token.LEQ, token.GT, token.GEQ,
		token.AND, token.OR, token.NOT,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACK, token.RBRACK, token.COMMA, token.SEMI, token.COLON,
		token.DOT, token.QUESTION, token.EOF,
	}
	got := kinds(src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	src := "func while whilex if0 class int float bool string void"
	want := []token.Kind{
		token.FUNC, token.WHILE, token.IDENT, token.IDENT, token.CLASS,
		token.INTTYPE, token.FLOATTYPE, token.BOOLTYPE, token.STRINGTYPE,
		token.VOIDTYPE, token.EOF,
	}
	got := kinds(src)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"0", token.INT, "0"},
		{"42", token.INT, "42"},
		{"3.5", token.FLOAT, "3.5"},
		{"1e3", token.FLOAT, "1e3"},
		{"2.5e-2", token.FLOAT, "2.5e-2"},
		{"7.0", token.FLOAT, "7.0"},
	}
	for _, tt := range tests {
		l := New(tt.src)
		tok := l.Next()
		if tok.Kind != tt.kind || tok.Lit != tt.lit {
			t.Errorf("%q: got %s %q, want %s %q", tt.src, tok.Kind, tok.Lit, tt.kind, tt.lit)
		}
		if len(l.Errors()) != 0 {
			t.Errorf("%q: unexpected errors %v", tt.src, l.Errors())
		}
	}
}

func TestDotAfterNumber(t *testing.T) {
	// "1.foo" must lex as INT DOT IDENT, not a malformed float.
	got := kinds("1.foo")
	want := []token.Kind{token.INT, token.DOT, token.IDENT, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestStrings(t *testing.T) {
	l := New(`"hello\nworld" "tab\t" "q\"q"`)
	toks := l.All()
	if len(l.Errors()) != 0 {
		t.Fatalf("errors: %v", l.Errors())
	}
	wants := []string{"hello\nworld", "tab\t", `q"q`}
	for i, w := range wants {
		if toks[i].Kind != token.STRING || toks[i].Lit != w {
			t.Errorf("string %d: got %s %q, want %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestCharLiteral(t *testing.T) {
	l := New(`'a' '\n' '\''`)
	toks := l.All()
	if len(l.Errors()) != 0 {
		t.Fatalf("errors: %v", l.Errors())
	}
	wants := []string{"97", "10", "39"}
	for i, w := range wants {
		if toks[i].Kind != token.CHAR || toks[i].Lit != w {
			t.Errorf("char %d: got %s %q, want %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestComments(t *testing.T) {
	src := `a // line comment
	b /* block
	comment */ c`
	got := kinds(src)
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestUnterminatedString(t *testing.T) {
	l := New(`"abc`)
	l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for unterminated string")
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New(`/* abc`)
	l.All()
	if len(l.Errors()) == 0 {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestIllegalChars(t *testing.T) {
	for _, src := range []string{"@", "#", "&", "|", "~"} {
		l := New(src)
		tok := l.Next()
		if tok.Kind != token.ILLEGAL {
			t.Errorf("%q: got %s, want ILLEGAL", src, tok.Kind)
		}
		if len(l.Errors()) == 0 {
			t.Errorf("%q: expected a lexical error", src)
		}
	}
}

func TestPositions(t *testing.T) {
	l := New("a\n  b\nccc d")
	toks := l.All()
	wantPos := []token.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 3}, {Line: 3, Col: 1}, {Line: 3, Col: 5}}
	for i, w := range wantPos {
		if toks[i].Pos != w {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if k := l.Next().Kind; k != token.EOF {
			t.Fatalf("call %d after end: got %s, want EOF", i, k)
		}
	}
}

func TestLongInput(t *testing.T) {
	src := strings.Repeat("x = x + 1; ", 10000)
	l := New(src)
	toks := l.All()
	if len(toks) != 6*10000+1 {
		t.Fatalf("got %d tokens, want %d", len(toks), 6*10000+1)
	}
	if len(l.Errors()) != 0 {
		t.Fatalf("errors: %v", l.Errors())
	}
}
