// Package types implements semantic analysis for MiniJ: symbol resolution
// and type checking. The checker produces an Info structure that later
// phases (IR lowering, slicing, splitting) consult.
package types

import (
	"fmt"
	"strings"

	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/token"
)

// Type is a semantic type.
type Type interface {
	String() string
	Equal(Type) bool
}

// Basic is a primitive type.
type Basic struct{ Kind ast.BasicKind }

func (t *Basic) String() string { return t.Kind.String() }

// Equal reports type identity.
func (t *Basic) Equal(o Type) bool {
	b, ok := o.(*Basic)
	return ok && b.Kind == t.Kind
}

// Array is an array type.
type Array struct{ Elem Type }

func (t *Array) String() string { return t.Elem.String() + "[]" }

// Equal reports type identity.
func (t *Array) Equal(o Type) bool {
	a, ok := o.(*Array)
	return ok && a.Elem.Equal(t.Elem)
}

// Class is a reference to a user-defined class.
type Class struct {
	Name string
	Decl *ast.ClassDecl
}

func (t *Class) String() string { return t.Name }

// Equal reports type identity (classes are nominal).
func (t *Class) Equal(o Type) bool {
	c, ok := o.(*Class)
	return ok && c.Name == t.Name
}

// Null is the type of the null literal; assignable to any class or array.
type Null struct{}

func (t *Null) String() string { return "null" }

// Equal reports type identity.
func (t *Null) Equal(o Type) bool { _, ok := o.(*Null); return ok }

// Canonical basic types.
var (
	IntType    = &Basic{Kind: ast.Int}
	FloatType  = &Basic{Kind: ast.Float}
	BoolType   = &Basic{Kind: ast.Bool}
	StringType = &Basic{Kind: ast.String}
	VoidType   = &Basic{Kind: ast.Void}
	NullType   = &Null{}
)

// IsScalar reports whether t is a hideable scalar (int, float, or bool).
// Only scalar values may be stored in a hidden component (paper §2.2).
func IsScalar(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == ast.Int || b.Kind == ast.Float || b.Kind == ast.Bool)
}

// IsNumeric reports whether t is int or float.
func IsNumeric(t Type) bool {
	b, ok := t.(*Basic)
	return ok && (b.Kind == ast.Int || b.Kind == ast.Float)
}

// IsReference reports whether t is an array or class type (or null).
func IsReference(t Type) bool {
	switch t.(type) {
	case *Array, *Class, *Null:
		return true
	}
	return false
}

// SymbolKind classifies a resolved name.
type SymbolKind int

// Symbol kinds.
const (
	SymLocal SymbolKind = iota
	SymParam
	SymGlobal
	SymField // instance field of the enclosing class (implicit this)
)

func (k SymbolKind) String() string {
	switch k {
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymGlobal:
		return "global"
	case SymField:
		return "field"
	}
	return "?"
}

// Symbol is a resolved variable-like entity.
type Symbol struct {
	Name  string
	Kind  SymbolKind
	Type  Type
	Class string // for SymField: the owning class
}

// FuncSig is the signature of a function or method.
type FuncSig struct {
	Name   string
	Class  string // empty for top-level functions
	Params []Type
	Result Type
	Decl   *ast.FuncDecl
}

// QName returns "Class.Name" for methods and "Name" for functions.
func (s *FuncSig) QName() string {
	if s.Class != "" {
		return s.Class + "." + s.Name
	}
	return s.Name
}

// Info carries the results of type checking.
type Info struct {
	// ExprTypes maps each expression node to its type.
	ExprTypes map[ast.Expr]Type
	// Uses maps each identifier expression to its resolved symbol.
	Uses map[*ast.Ident]*Symbol
	// Funcs maps qualified names ("f", "Class.m") to signatures.
	Funcs map[string]*FuncSig
	// Classes maps class names to their semantic types.
	Classes map[string]*Class
	// Globals maps global names to symbols.
	Globals map[string]*Symbol
}

// TypeOf returns the checked type of e, or nil.
func (in *Info) TypeOf(e ast.Expr) Type { return in.ExprTypes[e] }

// Error is a semantic error with position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList aggregates semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

// Check type-checks prog and returns the collected semantic information.
func Check(prog *ast.Program) (*Info, error) {
	c := &checker{
		info: &Info{
			ExprTypes: make(map[ast.Expr]Type),
			Uses:      make(map[*ast.Ident]*Symbol),
			Funcs:     make(map[string]*FuncSig),
			Classes:   make(map[string]*Class),
			Globals:   make(map[string]*Symbol),
		},
	}
	c.collect(prog)
	c.checkBodies(prog)
	if len(c.errors) > 0 {
		return c.info, c.errors
	}
	return c.info, nil
}

// MustCheck panics on a check failure; for tests and embedded corpora.
func MustCheck(prog *ast.Program) *Info {
	info, err := Check(prog)
	if err != nil {
		panic(err)
	}
	return info
}

type checker struct {
	info   *Info
	errors ErrorList

	// Current function context.
	curClass  *Class
	curSig    *FuncSig
	scopes    []map[string]*Symbol
	loopDepth int
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errors = append(c.errors, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// resolveType converts a syntactic type to a semantic one.
func (c *checker) resolveType(t ast.Type) Type {
	switch t := t.(type) {
	case *ast.BasicType:
		switch t.Kind {
		case ast.Int:
			return IntType
		case ast.Float:
			return FloatType
		case ast.Bool:
			return BoolType
		case ast.String:
			return StringType
		case ast.Void:
			return VoidType
		}
	case *ast.ArrayType:
		return &Array{Elem: c.resolveType(t.Elem)}
	case *ast.ClassType:
		if cl, ok := c.info.Classes[t.Name]; ok {
			return cl
		}
		c.errorf(t.Pos(), "undefined class %s", t.Name)
		return IntType
	}
	return IntType
}

func (c *checker) collect(prog *ast.Program) {
	for _, cl := range prog.Classes {
		if _, dup := c.info.Classes[cl.Name]; dup {
			c.errorf(cl.Pos(), "class %s redeclared", cl.Name)
			continue
		}
		c.info.Classes[cl.Name] = &Class{Name: cl.Name, Decl: cl}
	}
	for _, g := range prog.Globals {
		if _, dup := c.info.Globals[g.Name]; dup {
			c.errorf(g.Pos(), "global %s redeclared", g.Name)
			continue
		}
		c.info.Globals[g.Name] = &Symbol{Name: g.Name, Kind: SymGlobal, Type: c.resolveType(g.Type)}
	}
	for _, f := range prog.Funcs {
		c.collectFunc(f, "")
	}
	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			c.collectFunc(m, cl.Name)
		}
	}
}

func (c *checker) collectFunc(f *ast.FuncDecl, class string) {
	sig := &FuncSig{Name: f.Name, Class: class, Result: c.resolveType(f.Result), Decl: f}
	for _, p := range f.Params {
		sig.Params = append(sig.Params, c.resolveType(p.Type))
	}
	qn := sig.QName()
	if _, dup := c.info.Funcs[qn]; dup {
		c.errorf(f.Pos(), "%s redeclared", qn)
		return
	}
	c.info.Funcs[qn] = sig
}

func (c *checker) checkBodies(prog *ast.Program) {
	for _, g := range prog.Globals {
		if g.Init != nil {
			t := c.exprNoScope(g.Init)
			gt := c.info.Globals[g.Name].Type
			if !assignable(gt, t) {
				c.errorf(g.Pos(), "cannot initialize global %s (%s) with %s", g.Name, gt, t)
			}
		}
	}
	for _, f := range prog.Funcs {
		c.checkFunc(f, nil)
	}
	for _, cl := range prog.Classes {
		ct := c.info.Classes[cl.Name]
		seen := map[string]bool{}
		for _, fd := range cl.Fields {
			if seen[fd.Name] {
				c.errorf(fd.Pos(), "field %s redeclared in class %s", fd.Name, cl.Name)
			}
			seen[fd.Name] = true
		}
		for _, m := range cl.Methods {
			c.checkFunc(m, ct)
		}
	}
}

// exprNoScope checks an expression outside any function (global initializer).
func (c *checker) exprNoScope(e ast.Expr) Type {
	c.scopes = []map[string]*Symbol{{}}
	t := c.expr(e)
	c.scopes = nil
	return t
}

func (c *checker) checkFunc(f *ast.FuncDecl, class *Class) {
	c.curClass = class
	key := f.Name
	if class != nil {
		key = class.Name + "." + f.Name
	}
	c.curSig = c.info.Funcs[key]
	if c.curSig == nil {
		return // duplicate; already reported
	}
	c.scopes = []map[string]*Symbol{{}}
	for i, p := range f.Params {
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: c.curSig.Params[i]}
		if _, dup := c.scopes[0][p.Name]; dup {
			c.errorf(p.NPos, "parameter %s redeclared", p.Name)
		}
		c.scopes[0][p.Name] = sym
	}
	c.block(f.Body)
	c.scopes = nil
	c.curSig = nil
	c.curClass = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos token.Pos, sym *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(pos, "%s %s redeclared in this scope", sym.Kind, sym.Name)
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	if c.curClass != nil {
		for _, fd := range c.curClass.Decl.Fields {
			if fd.Name == name {
				return &Symbol{Name: name, Kind: SymField, Type: c.resolveType(fd.Type), Class: c.curClass.Name}
			}
		}
	}
	if g, ok := c.info.Globals[name]; ok {
		return g
	}
	return nil
}

func (c *checker) block(b *ast.Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.stmt(s)
	}
	c.popScope()
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.VarDecl:
		t := c.resolveType(s.Type)
		if s.Init != nil {
			it := c.expr(s.Init)
			if !assignable(t, it) {
				c.errorf(s.Pos(), "cannot initialize %s (%s) with %s", s.Name, t, it)
			}
		}
		c.declare(s.NPos, &Symbol{Name: s.Name, Kind: SymLocal, Type: t})
	case *ast.Assign:
		lt := c.lvalue(s.Lhs)
		rt := c.expr(s.Rhs)
		if lt != nil && rt != nil && !assignable(lt, rt) {
			c.errorf(s.Pos(), "cannot assign %s to %s", rt, lt)
		}
	case *ast.If:
		ct := c.expr(s.Cond)
		if ct != nil && !ct.Equal(BoolType) {
			c.errorf(s.Cond.Pos(), "if condition must be bool, got %s", ct)
		}
		c.block(s.Then)
		if s.Else != nil {
			c.block(s.Else)
		}
	case *ast.While:
		ct := c.expr(s.Cond)
		if ct != nil && !ct.Equal(BoolType) {
			c.errorf(s.Cond.Pos(), "while condition must be bool, got %s", ct)
		}
		c.loopDepth++
		c.block(s.Body)
		c.loopDepth--
	case *ast.For:
		c.pushScope()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			ct := c.expr(s.Cond)
			if ct != nil && !ct.Equal(BoolType) {
				c.errorf(s.Cond.Pos(), "for condition must be bool, got %s", ct)
			}
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.loopDepth++
		c.block(s.Body)
		c.loopDepth--
		c.popScope()
	case *ast.Return:
		var got Type = VoidType
		if s.Value != nil {
			got = c.expr(s.Value)
		}
		if c.curSig != nil && got != nil {
			if s.Value == nil {
				if !c.curSig.Result.Equal(VoidType) {
					c.errorf(s.Pos(), "missing return value (want %s)", c.curSig.Result)
				}
			} else if !assignable(c.curSig.Result, got) {
				c.errorf(s.Pos(), "cannot return %s (want %s)", got, c.curSig.Result)
			}
		}
	case *ast.Break, *ast.Continue:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break/continue outside loop")
		}
	case *ast.Print:
		for _, a := range s.Args {
			c.expr(a)
		}
	case *ast.ExprStmt:
		switch s.X.(type) {
		case *ast.Call, *ast.MethodCall:
			c.expr(s.X)
		default:
			c.errorf(s.Pos(), "expression statement must be a call")
			c.expr(s.X)
		}
	case *ast.Block:
		c.block(s)
	}
}

// lvalue checks an assignable expression and returns its type.
func (c *checker) lvalue(e ast.Expr) Type {
	switch e.(type) {
	case *ast.Ident, *ast.Index, *ast.FieldAccess:
		return c.expr(e)
	}
	c.errorf(e.Pos(), "cannot assign to this expression")
	c.expr(e)
	return nil
}

func (c *checker) expr(e ast.Expr) Type {
	t := c.exprInner(e)
	if t != nil {
		c.info.ExprTypes[e] = t
	}
	return t
}

func (c *checker) exprInner(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntType
	case *ast.FloatLit:
		return FloatType
	case *ast.BoolLit:
		return BoolType
	case *ast.StringLit:
		return StringType
	case *ast.NullLit:
		return NullType
	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			c.errorf(e.Pos(), "undefined variable %s", e.Name)
			return IntType
		}
		c.info.Uses[e] = sym
		return sym.Type
	case *ast.Unary:
		xt := c.expr(e.X)
		switch e.Op {
		case token.MINUS:
			if !IsNumeric(xt) {
				c.errorf(e.Pos(), "operator - requires numeric operand, got %s", xt)
			}
			return xt
		case token.NOT:
			if !xt.Equal(BoolType) {
				c.errorf(e.Pos(), "operator ! requires bool operand, got %s", xt)
			}
			return BoolType
		}
		return xt
	case *ast.Binary:
		return c.binary(e)
	case *ast.Index:
		at := c.expr(e.Arr)
		it := c.expr(e.I)
		if it != nil && !it.Equal(IntType) {
			c.errorf(e.I.Pos(), "array index must be int, got %s", it)
		}
		if arr, ok := at.(*Array); ok {
			return arr.Elem
		}
		c.errorf(e.Pos(), "indexing non-array type %s", at)
		return IntType
	case *ast.FieldAccess:
		ot := c.expr(e.Obj)
		cl, ok := ot.(*Class)
		if !ok {
			c.errorf(e.Pos(), "field access on non-class type %s", ot)
			return IntType
		}
		for _, fd := range cl.Decl.Fields {
			if fd.Name == e.Name {
				return c.resolveType(fd.Type)
			}
		}
		c.errorf(e.NPos, "class %s has no field %s", cl.Name, e.Name)
		return IntType
	case *ast.Call:
		// A bare call inside a method resolves to a sibling method first
		// (class scope shadows the global function namespace), then to a
		// top-level function.
		if c.curClass != nil {
			if msig, ok := c.info.Funcs[c.curClass.Name+"."+e.Name]; ok {
				return c.callSig(e.Pos(), msig, e.Args)
			}
		}
		sig, ok := c.info.Funcs[e.Name]
		if !ok {
			c.errorf(e.Pos(), "undefined function %s", e.Name)
			for _, a := range e.Args {
				c.expr(a)
			}
			return IntType
		}
		return c.callSig(e.Pos(), sig, e.Args)
	case *ast.MethodCall:
		rt := c.expr(e.Recv)
		cl, ok := rt.(*Class)
		if !ok {
			c.errorf(e.Pos(), "method call on non-class type %s", rt)
			for _, a := range e.Args {
				c.expr(a)
			}
			return IntType
		}
		sig, ok := c.info.Funcs[cl.Name+"."+e.Name]
		if !ok {
			c.errorf(e.NPos, "class %s has no method %s", cl.Name, e.Name)
			for _, a := range e.Args {
				c.expr(a)
			}
			return IntType
		}
		return c.callSig(e.Pos(), sig, e.Args)
	case *ast.NewObject:
		cl, ok := c.info.Classes[e.Name]
		if !ok {
			c.errorf(e.Pos(), "undefined class %s", e.Name)
			return IntType
		}
		return cl
	case *ast.NewArray:
		st := c.expr(e.Size)
		if st != nil && !st.Equal(IntType) {
			c.errorf(e.Size.Pos(), "array size must be int, got %s", st)
		}
		return &Array{Elem: c.resolveType(e.Elem)}
	case *ast.LenExpr:
		at := c.expr(e.Arr)
		if _, ok := at.(*Array); !ok {
			if !at.Equal(StringType) {
				c.errorf(e.Pos(), "len requires array or string, got %s", at)
			}
		}
		return IntType
	case *ast.Convert:
		xt := c.expr(e.X)
		if xt != nil && !IsNumeric(xt) {
			c.errorf(e.Pos(), "cannot convert %s to %s", xt, e.To)
		}
		if e.To == ast.Float {
			return FloatType
		}
		return IntType
	case *ast.Cond:
		ct := c.expr(e.C)
		if ct != nil && !ct.Equal(BoolType) {
			c.errorf(e.C.Pos(), "condition must be bool, got %s", ct)
		}
		tt := c.expr(e.T)
		ft := c.expr(e.F)
		if tt != nil && ft != nil && !tt.Equal(ft) {
			c.errorf(e.Pos(), "mismatched conditional arms: %s vs %s", tt, ft)
		}
		return tt
	}
	return IntType
}

func (c *checker) callSig(pos token.Pos, sig *FuncSig, args []ast.Expr) Type {
	if len(args) != len(sig.Params) {
		c.errorf(pos, "%s expects %d arguments, got %d", sig.QName(), len(sig.Params), len(args))
	}
	for i, a := range args {
		at := c.expr(a)
		if i < len(sig.Params) && at != nil && !assignable(sig.Params[i], at) {
			c.errorf(a.Pos(), "argument %d of %s: cannot use %s as %s", i+1, sig.QName(), at, sig.Params[i])
		}
	}
	return sig.Result
}

func (c *checker) binary(e *ast.Binary) Type {
	xt := c.expr(e.X)
	yt := c.expr(e.Y)
	if xt == nil || yt == nil {
		return IntType
	}
	switch e.Op {
	case token.PLUS:
		if xt.Equal(StringType) && yt.Equal(StringType) {
			return StringType
		}
		fallthrough
	case token.MINUS, token.STAR, token.SLASH:
		if !IsNumeric(xt) || !IsNumeric(yt) {
			c.errorf(e.Pos(), "operator %s requires numeric operands, got %s and %s", e.Op, xt, yt)
			return IntType
		}
		if !xt.Equal(yt) {
			c.errorf(e.Pos(), "mismatched operands for %s: %s and %s", e.Op, xt, yt)
		}
		return xt
	case token.PERCENT:
		if !xt.Equal(IntType) || !yt.Equal(IntType) {
			c.errorf(e.Pos(), "operator %% requires int operands, got %s and %s", xt, yt)
		}
		return IntType
	case token.EQ, token.NEQ:
		if !comparable(xt, yt) {
			c.errorf(e.Pos(), "cannot compare %s and %s", xt, yt)
		}
		return BoolType
	case token.LT, token.LEQ, token.GT, token.GEQ:
		if !IsNumeric(xt) || !IsNumeric(yt) || !xt.Equal(yt) {
			if !(xt.Equal(StringType) && yt.Equal(StringType)) {
				c.errorf(e.Pos(), "operator %s requires matching numeric operands, got %s and %s", e.Op, xt, yt)
			}
		}
		return BoolType
	case token.AND, token.OR:
		if !xt.Equal(BoolType) || !yt.Equal(BoolType) {
			c.errorf(e.Pos(), "operator %s requires bool operands, got %s and %s", e.Op, xt, yt)
		}
		return BoolType
	}
	c.errorf(e.Pos(), "unknown binary operator %s", e.Op)
	return IntType
}

func assignable(dst, src Type) bool {
	if dst.Equal(src) {
		return true
	}
	if _, isNull := src.(*Null); isNull && IsReference(dst) {
		return true
	}
	return false
}

func comparable(a, b Type) bool {
	if a.Equal(b) {
		return true
	}
	if IsReference(a) && IsReference(b) {
		_, an := a.(*Null)
		_, bn := b.(*Null)
		return an || bn || a.Equal(b)
	}
	return false
}
