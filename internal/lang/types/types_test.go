package types

import (
	"strings"
	"testing"

	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/parser"
)

func check(t *testing.T, src string) (*Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustOK(t *testing.T, src string) *Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected type error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not mention %q", err, wantSubstr)
	}
}

func TestBasicOK(t *testing.T) {
	mustOK(t, `
var g: int = 3;
func add(a: int, b: int): int { return a + b; }
func main() {
    var x: int = add(g, 4);
    var f: float = 2.5 * 3.0;
    var b: bool = x > 2 && f < 10.0;
    if (b) { print("yes", x); }
}`)
}

func TestClassOK(t *testing.T) {
	info := mustOK(t, `
class Point {
    field x: int;
    field y: int;
    method move(dx: int, dy: int) { x = x + dx; y = y + dy; }
    method norm2(): int { return x * x + y * y; }
}
func main() {
    var p: Point = new Point();
    p.move(3, 4);
    print(p.norm2(), p.x);
}`)
	if info.Funcs["Point.move"] == nil || info.Funcs["Point.norm2"] == nil {
		t.Error("method signatures missing")
	}
	if info.Classes["Point"] == nil {
		t.Error("class missing")
	}
}

func TestMethodCallsSiblingMethod(t *testing.T) {
	mustOK(t, `
class C {
    field v: int;
    method a(): int { return b() + 1; }
    method b(): int { return v; }
}
func main() { var c: C = new C(); print(c.a()); }`)
}

func TestArraysOK(t *testing.T) {
	mustOK(t, `
func main() {
    var a: int[] = new int[10];
    a[0] = 5;
    var n: int = len(a);
    var m: int[][] = new int[3][];
    m[0] = a;
    print(m[0][0], n);
}`)
}

func TestNullAssignable(t *testing.T) {
	mustOK(t, `
class C { field v: int; }
func main() {
    var c: C = null;
    var a: int[] = null;
    if (c == null && a == null) { print(1); }
}`)
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func f() { x = 1; }`, "undefined variable"},
		{`func f() { var x: int = true; }`, "cannot initialize"},
		{`func f() { var x: int = 1; var x: int = 2; }`, "redeclared"},
		{`func f(): int { return true; }`, "cannot return"},
		{`func f() { if (1) { } }`, "must be bool"},
		{`func f() { while (2.0) { } }`, "must be bool"},
		{`func f() { var x: int = 1 + true; }`, "numeric"},
		{`func f() { var x: int = 1; var y: float = 2.0; var z: int = x + y; }`, "mismatched"},
		{`func f() { var x: bool = 1 % 2.0 == 0; }`, "%"},
		{`func f() { g(); }`, "undefined function"},
		{`func g(a: int) { } func f() { g(); }`, "expects 1 arguments"},
		{`func g(a: int) { } func f() { g(true); }`, "cannot use bool"},
		{`func f() { var a: int = 1; a[0] = 2; }`, "indexing non-array"},
		{`func f() { var a: int[] = new int[true]; }`, "array size must be int"},
		{`func f() { var a: int[] = new int[3]; a[true] = 1; }`, "index must be int"},
		{`class C { field v: int; } func f() { var c: C = new C(); print(c.w); }`, "no field"},
		{`class C { } func f() { var c: C = new C(); c.m(); }`, "no method"},
		{`func f() { var c: D = null; }`, "undefined class"},
		{`func f() { break; }`, "outside loop"},
		{`func f() { 1 + 2; }`, "must be a call"},
		{`func f() { var b: bool = !3; }`, "requires bool"},
		{`func f() { var x: int = true ? 1 : 2.0; }`, "mismatched conditional"},
		{`class C { field v: int; field v: int; }`, "redeclared"},
		{`func f() { } func f() { }`, "redeclared"},
		{`var g: int; var g: int;`, "redeclared"},
		{`func f(a: int, a: int) { }`, "redeclared"},
		{`func f() { var s: string = "a"; var x: int = len(s); var y: int = len(x); }`, "len requires"},
	}
	for _, c := range cases {
		mustFail(t, c.src, c.want)
	}
}

func TestShadowingInInnerScope(t *testing.T) {
	mustOK(t, `
func f() {
    var x: int = 1;
    if (x > 0) {
        var x: bool = true;
        if (x) { print(1); }
    }
    x = x + 1;
}`)
}

func TestUsesResolved(t *testing.T) {
	info := mustOK(t, `
var g: int = 1;
class C {
    field fld: int;
    method m(p: int): int { var l: int = p + fld + g; return l; }
}
func main() { var c: C = new C(); print(c.m(2)); }`)
	kinds := map[SymbolKind]int{}
	for _, sym := range info.Uses {
		kinds[sym.Kind]++
	}
	if kinds[SymParam] == 0 || kinds[SymField] == 0 || kinds[SymGlobal] == 0 || kinds[SymLocal] == 0 {
		t.Errorf("resolved use kinds: %v", kinds)
	}
}

func TestExprTypes(t *testing.T) {
	prog := parser.MustParse(`func f(x: int, y: float): float { return y * 2.0; }`)
	info := MustCheck(prog)
	ret := prog.Funcs[0].Body.Stmts[0].(*ast.Return)
	if got := info.TypeOf(ret.Value); got == nil || !got.Equal(FloatType) {
		t.Errorf("type of return expr: %v", got)
	}
}

func TestIsScalar(t *testing.T) {
	if !IsScalar(IntType) || !IsScalar(FloatType) || !IsScalar(BoolType) {
		t.Error("int/float/bool must be scalar")
	}
	if IsScalar(StringType) || IsScalar(VoidType) {
		t.Error("string/void must not be scalar")
	}
	if IsScalar(&Array{Elem: IntType}) {
		t.Error("arrays are not scalar")
	}
	if IsScalar(&Class{Name: "C"}) {
		t.Error("classes are not scalar")
	}
}

func TestStringConcatAndCompare(t *testing.T) {
	mustOK(t, `func f(): string { var s: string = "a" + "b"; if (s < "c") { return s; } return "z"; }`)
}

func TestVoidCallAsStatement(t *testing.T) {
	mustOK(t, `func g() { } func f() { g(); }`)
}

func TestRecursiveFunction(t *testing.T) {
	mustOK(t, `func fib(n: int): int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }`)
}

func TestGlobalInitChecked(t *testing.T) {
	mustFail(t, `var g: int = true;`, "cannot initialize global")
}
