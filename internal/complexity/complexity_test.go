package complexity

import (
	"testing"

	"slicehide/internal/core"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

func analyzeSplit(t *testing.T, src, fn, seed string) []Report {
	t.Helper()
	prog, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := core.SplitProgram(prog, []core.Spec{{Func: fn, Seed: seed}}, slicer.Policy{})
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	return Analyze(res.Splits[fn])
}

func reportByKind(reports []Report, kind core.ILPKind) []Report {
	var out []Report
	for _, r := range reports {
		if r.ILP.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

func TestLatticeOps(t *testing.T) {
	lin := LinearIn("x")
	if got := Add(lin, LinearIn("y")); got.Type != Linear || got.NumInputs() != 2 || got.Degree != 1 {
		t.Errorf("linear+linear: %v", got)
	}
	if got := Mul(lin, LinearIn("y")); got.Type != Polynomial || got.Degree != 2 {
		t.Errorf("linear*linear: %v", got)
	}
	if got := Mul(ConstantAC(), lin); got.Type != Linear || got.Degree != 1 {
		t.Errorf("const*linear: %v", got)
	}
	if got := Div(lin, ConstantAC()); got.Type != Linear {
		t.Errorf("linear/const: %v", got)
	}
	if got := Div(lin, LinearIn("y")); got.Type != Rational {
		t.Errorf("linear/linear: %v", got)
	}
	if got := Arb(lin); got.Type != Arbitrary {
		t.Errorf("arb: %v", got)
	}
	if got := Raise(lin, LinearIn("n")); got.Type != Polynomial || got.Degree != 2 {
		t.Errorf("raise(linear, linear): %v", got)
	}
	if got := Raise(ConstantAC(), LinearIn("n")); got.Type != Linear || got.Degree != 1 {
		t.Errorf("raise(const, linear): %v", got)
	}
	if got := Raise(lin, Arb()); got.Type != Arbitrary {
		t.Errorf("raise to arbitrary: %v", got)
	}
}

func TestLatticeOrder(t *testing.T) {
	order := []AC{
		ConstantAC(),
		LinearIn("x"),
		{Type: Polynomial, Degree: 2},
		{Type: Rational, Degree: 2},
		{Type: Arbitrary},
	}
	for i := 0; i < len(order)-1; i++ {
		if !Less(order[i], order[i+1]) {
			t.Errorf("order violated at %d: %v !< %v", i, order[i], order[i+1])
		}
		if Less(order[i+1], order[i]) {
			t.Errorf("antisymmetry violated at %d", i)
		}
	}
	// Max/Min agree with Less.
	a, b := LinearIn("x"), AC{Type: Rational, Degree: 3}
	if Max(a, b).Type != Rational || Min(a, b).Type != Linear {
		t.Error("max/min inconsistent with order")
	}
}

func TestLinearLeak(t *testing.T) {
	// a = 3x + y is hidden; its leak must be classified linear with 2 inputs.
	reports := analyzeSplit(t, `
func f(x: int, y: int): int {
    var a: int = 3 * x + y;
    var B: int[] = new int[4];
    B[0] = a;
    return B[0];
}
func main() { print(f(1, 2)); }`, "f", "a")
	leaks := reportByKind(reports, core.ILPLeakAssign)
	if len(leaks) != 1 {
		t.Fatalf("leak reports: %v", reports)
	}
	got := leaks[0].AC
	if got.Type != Linear || got.NumInputs() != 2 || got.Degree != 1 {
		t.Errorf("AC of 3x+y leak: %v", got)
	}
}

func TestPolynomialLeak(t *testing.T) {
	reports := analyzeSplit(t, `
func f(x: int, y: int): int {
    var a: int = x * y + x;
    var B: int[] = new int[4];
    B[0] = a;
    return B[0];
}
func main() { print(f(2, 3)); }`, "f", "a")
	leaks := reportByKind(reports, core.ILPLeakAssign)
	if len(leaks) != 1 {
		t.Fatalf("leak reports: %v", reports)
	}
	if got := leaks[0].AC; got.Type != Polynomial || got.Degree != 2 {
		t.Errorf("AC of x*y+x leak: %v", got)
	}
}

func TestRationalLeak(t *testing.T) {
	reports := analyzeSplit(t, `
func f(x: float, y: float): float {
    var a: float = x / (y + 1.0);
    var B: float[] = new float[2];
    B[0] = a;
    return B[0];
}
func main() { print(f(4.0, 1.0)); }`, "f", "a")
	leaks := reportByKind(reports, core.ILPLeakAssign)
	if len(leaks) != 1 {
		t.Fatalf("leak reports: %v", reports)
	}
	if got := leaks[0].AC; got.Type != Rational {
		t.Errorf("AC of x/(y+1) leak: %v", got)
	}
}

func TestArbitraryPredicateLeak(t *testing.T) {
	reports := analyzeSplit(t, `
func f(x: int): int {
    var a: int = x * 2;
    var r: int = 0;
    if (a > 10) {
        r = 1;
    } else {
        print("lo");
    }
    return r + a;
}
func main() { print(f(9)); }`, "f", "a")
	conds := reportByKind(reports, core.ILPCond)
	if len(conds) == 0 {
		t.Fatalf("no predicate ILPs: %v", reports)
	}
	for _, c := range conds {
		if c.AC.Type != Arbitrary {
			t.Errorf("predicate AC must be arbitrary: %v", c.AC)
		}
		if !c.CC.HiddenPredicates {
			t.Errorf("predicate ILP must report hidden predicates: %v", c.CC)
		}
	}
}

// figure3Src mirrors the paper's Figure 3 example (the modified Figure 2):
// the hidden variable sum accumulates linear terms over a loop whose trip
// count is linear in observable values; the value of sum fetched after the
// loop must therefore be at least polynomial of degree 2 (the paper's
// ILP④ is <Polynomial, 4, 2>).
const figure3Src = `
func f(x: int, y: int, z: int): int {
    var a: int = 3 * x + y;
    var sum: int = 0;
    var i: int = a;
    while (i < z) {
        sum = sum + i;
        i = i + 1;
    }
    return sum;
}
func main() { print(f(1, 2, 20)); }
`

func TestFigure3SumIsPolynomialDegree2(t *testing.T) {
	reports := analyzeSplit(t, figure3Src, "f", "a")
	// Find the report for the fetch/eval of sum at the return.
	var sumReport *Report
	for i, r := range reports {
		if vr, ok := r.ILP.HiddenExpr.(*ir.VarRef); ok && vr.Var.Name == "sum" {
			sumReport = &reports[i]
		}
	}
	if sumReport == nil {
		t.Fatalf("no sum ILP found: %v", reports)
	}
	if sumReport.AC.Type != Polynomial || sumReport.AC.Degree < 2 {
		t.Errorf("AC(sum at return) = %v, want polynomial degree >= 2", sumReport.AC)
	}
	// The whole loop is hidden, so paths are variable and flow is hidden.
	if !sumReport.CC.PathsVariable {
		t.Errorf("CC paths must be variable: %v", sumReport.CC)
	}
	if !sumReport.CC.HiddenPredicates || !sumReport.CC.HiddenFlow {
		t.Errorf("CC must report hidden predicate and flow: %v", sumReport.CC)
	}
}

func TestDefinitelyLeakedDefIsObservable(t *testing.T) {
	// a's sole def is leaked at B[0] = a. A later leak of c = a + 1 can
	// treat a as observable: c's AC relative to observables is linear.
	reports := analyzeSplit(t, `
func f(x: int, y: int): int {
    var a: int = x * y + x * x;
    var B: int[] = new int[4];
    B[0] = a;
    var c: int = a + 1;
    B[1] = c;
    return B[1];
}
func main() { print(f(2, 3)); }`, "f", "a")
	leaks := reportByKind(reports, core.ILPLeakAssign)
	if len(leaks) != 2 {
		t.Fatalf("want 2 leaks, got %v", reports)
	}
	// First leak (a itself): polynomial (x*y + x*x).
	if got := leaks[0].AC; got.Type != Polynomial {
		t.Errorf("AC of first leak: %v", got)
	}
	// Second leak (c = a + 1): linear in the already-observed a.
	if got := leaks[1].AC; got.Type != Linear {
		t.Errorf("AC of second leak: %v", got)
	}
}

func TestVaryingInputsFromArrayInLoop(t *testing.T) {
	reports := analyzeSplit(t, `
func f(n: int): int {
    var B: int[] = new int[n];
    for (var k: int = 0; k < n; k++) { B[k] = k; }
    var s: int = 0;
    var i: int = 0;
    while (i < n) {
        s = s + B[i];
        i = i + 1;
    }
    return s;
}
func main() { print(f(5)); }`, "f", "s")
	var found bool
	for _, r := range reports {
		if r.AC.Varying {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a varying-inputs ILP (array elements shipped per iteration): %+v", reports)
	}
}

func TestAggregate(t *testing.T) {
	reports := analyzeSplit(t, figure3Src, "f", "a")
	t3, t4 := Aggregate("fig3", reports)
	if t3.Total() != len(reports) {
		t.Errorf("table3 total %d != %d reports", t3.Total(), len(reports))
	}
	if t3.MaxDegree < 2 {
		t.Errorf("max degree: %d", t3.MaxDegree)
	}
	if t4.PathsVariable == 0 || t4.PredicatesHidden == 0 || t4.FlowHidden == 0 {
		t.Errorf("table4 row: %+v", t4)
	}
}

func TestMaxAC(t *testing.T) {
	reports := analyzeSplit(t, figure3Src, "f", "a")
	max := MaxAC(reports)
	if max.Type < Polynomial {
		t.Errorf("max AC: %v", max)
	}
}

func TestACStringFormat(t *testing.T) {
	ac := AC{Type: Polynomial, Degree: 2, Inputs: map[string]bool{"x": true, "y": true}}
	if got := ac.String(); got != "<polynomial, 2, 2>" {
		t.Errorf("ac string: %s", got)
	}
	ac.Varying = true
	if got := ac.String(); got != "<polynomial, varying, 2>" {
		t.Errorf("varying string: %s", got)
	}
	cc := CC{PathsVariable: true, HiddenPredicates: true, HiddenFlow: true}
	if got := cc.String(); got != "<variable, hidden, hidden>" {
		t.Errorf("cc string: %s", got)
	}
}

func TestParseType(t *testing.T) {
	for _, name := range []string{"constant", "linear", "polynomial", "rational", "arbitrary"} {
		ty, err := ParseType(name)
		if err != nil || ty.String() != name {
			t.Errorf("parse %s: %v %v", name, ty, err)
		}
	}
	if _, err := ParseType("nope"); err == nil {
		t.Error("expected error")
	}
}
