package complexity

import (
	"slicehide/internal/cfg"
	"slicehide/internal/core"
	"slicehide/internal/dataflow"
	"slicehide/internal/ir"
	"slicehide/internal/lang/token"
	"slicehide/internal/slicer"
)

// CC is the §3 control-flow complexity triple <Paths, Predicates, Flow>.
type CC struct {
	// PathsVariable reports whether the number of paths through the hidden
	// code behind the ILP depends on runtime values (hidden loops).
	PathsVariable bool
	// Paths estimates the path count when it is a compile-time constant
	// (2^branches, capped).
	Paths int
	// HiddenPredicates reports whether some predicate governing the leaked
	// computation lives in the hidden component.
	HiddenPredicates bool
	// HiddenFlow reports whether control-flow constructs of the leaked
	// computation were moved (partially or fully) to the hidden component.
	HiddenFlow bool
}

// String renders the triple the way the paper writes it.
func (c CC) String() string {
	paths := "constant"
	if c.PathsVariable {
		paths = "variable"
	}
	preds, flow := "open", "open"
	if c.HiddenPredicates {
		preds = "hidden"
	}
	if c.HiddenFlow {
		flow = "hidden"
	}
	return "<" + paths + ", " + preds + ", " + flow + ">"
}

// Report is the complexity characterization of one ILP.
type Report struct {
	ILP *core.ILP
	AC  AC
	CC  CC
}

// Options tunes the analysis.
type Options struct {
	// MinAtUses aggregates multiple reaching definitions at a use with MIN
	// (the literal reading of the paper's Figure 3 rule), yielding the
	// complexity of the adversary's easiest path — which classifies any
	// value reachable from a constant initialization as Constant. The
	// default (false) uses MAX, matching the paper's worked example
	// (ILP④ = <Polynomial, 4, 2>) and its definition
	// AC(f_ILP) = MAX over paths. The difference is measured by the
	// min-vs-max ablation benchmark.
	MinAtUses bool
}

// Analyze characterizes every ILP of a split function with default options.
func Analyze(sf *core.SplitFunc) []Report { return AnalyzeOpts(sf, Options{}) }

// AnalyzeOpts characterizes every ILP of a split function.
func AnalyzeOpts(sf *core.SplitFunc, opts Options) []Report {
	a := newAnalyzer(sf)
	a.opts = opts
	a.fixpoint()
	out := make([]Report, 0, len(sf.ILPs))
	for _, ilp := range sf.ILPs {
		out = append(out, Report{ILP: ilp, AC: a.ilpAC(ilp), CC: a.ilpCC(ilp)})
	}
	return out
}

type analyzer struct {
	opts   Options
	sf     *core.SplitFunc
	g      *cfg.Graph
	reach  *dataflow.Result
	roles  map[int]slicer.Role
	hidden map[*ir.Var]bool

	// observable marks defs whose values the adversary can read directly
	// (computed in the open component, or definitely leaked).
	observable map[*dataflow.Def]bool
	// constDef marks observable defs of compile-time constants.
	constDef map[*dataflow.Def]bool
	acDef    map[*dataflow.Def]AC

	// enclosing maps statement IDs to their enclosing if/while statements,
	// innermost last.
	enclosing map[int][]ir.Stmt
	// loopsOf maps statement IDs to enclosing while statements.
	loopsOf map[int][]*ir.WhileStmt
}

func newAnalyzer(sf *core.SplitFunc) *analyzer {
	a := &analyzer{
		sf:         sf,
		g:          sf.Slice.Graph,
		reach:      sf.Slice.Reach,
		roles:      sf.Slice.Roles,
		hidden:     sf.Slice.Hidden,
		observable: make(map[*dataflow.Def]bool),
		constDef:   make(map[*dataflow.Def]bool),
		acDef:      make(map[*dataflow.Def]AC),
		enclosing:  make(map[int][]ir.Stmt),
		loopsOf:    make(map[int][]*ir.WhileStmt),
	}
	a.buildEnclosure(sf.Orig.Body, nil)
	a.classifyDefs()
	return a
}

func (a *analyzer) buildEnclosure(stmts []ir.Stmt, stack []ir.Stmt) {
	for _, st := range stmts {
		a.enclosing[st.ID()] = append([]ir.Stmt(nil), stack...)
		for _, en := range stack {
			if w, ok := en.(*ir.WhileStmt); ok {
				a.loopsOf[st.ID()] = append(a.loopsOf[st.ID()], w)
			}
		}
		switch st := st.(type) {
		case *ir.IfStmt:
			inner := append(append([]ir.Stmt(nil), stack...), st)
			a.buildEnclosure(st.Then, inner)
			a.buildEnclosure(st.Else, inner)
		case *ir.WhileStmt:
			inner := append(append([]ir.Stmt(nil), stack...), st)
			a.buildEnclosure(st.Body, inner)
			a.buildEnclosure(st.Post, inner)
		}
	}
}

// classifyDefs decides observability: a def is observable when its value is
// produced by the open component (any role other than RoleFull) or arrives
// from outside (parameters, globals, entry state), or when it is a hidden
// def that is definitely leaked at some ILP (the only def reaching a
// bare-variable leak site).
func (a *analyzer) classifyDefs() {
	for _, d := range a.reach.Defs {
		if d.Node.Stmt == nil {
			// Entry defs: caller-visible state.
			a.observable[d] = true
			continue
		}
		role := a.roles[d.Node.Stmt.ID()]
		if !a.hidden[d.Var] || role == slicer.RoleSend {
			a.observable[d] = true
			if as, ok := d.Node.Stmt.(*ir.AssignStmt); ok {
				if _, isConst := as.Rhs.(*ir.Const); isConst {
					a.constDef[d] = true
				}
			}
		}
	}
	// Definitely-leaked hidden defs.
	for _, ilp := range a.sf.ILPs {
		vr, ok := ilp.HiddenExpr.(*ir.VarRef)
		if !ok {
			continue
		}
		node := a.g.ByStmt[ilp.StmtID]
		if node == nil {
			continue
		}
		defs := a.reach.DefsReachingUse(node, vr.Var)
		if len(defs) == 1 {
			a.observable[defs[0]] = true
		}
	}
}

// fixpoint iterates EVAL over all defs until the AC assignment stabilizes.
func (a *analyzer) fixpoint() {
	for iter := 0; iter < 100; iter++ {
		changed := false
		for _, d := range a.reach.Defs {
			if d.Node.Stmt == nil || d.Implicit {
				continue
			}
			as, ok := d.Node.Stmt.(*ir.AssignStmt)
			if !ok || ir.DefinedVar(as) != d.Var {
				continue
			}
			ac := a.evalExpr(as.Rhs, d.Node.Stmt)
			if !ac.Equal(a.acDef[d]) {
				a.acDef[d] = ac
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// useAC is the paper's AC(u_v@n): the MIN over reaching definitions of the
// propagated complexity PC.
func (a *analyzer) useAC(v *ir.Var, at ir.Stmt) AC {
	node := a.g.ByStmt[at.ID()]
	if node == nil {
		return LinearIn(v.String())
	}
	defs := a.reach.DefsReachingUse(node, v)
	if len(defs) == 0 {
		// Conservatively treat unknown flows as observable inputs.
		return LinearIn(v.String())
	}
	var out AC
	first := true
	for _, d := range defs {
		pc := a.pc(d, at)
		switch {
		case first:
			out, first = pc, false
		case a.opts.MinAtUses:
			out = Min(out, pc)
		default:
			out = Max(out, pc)
		}
	}
	return out
}

// pc is the paper's PC(d_v@n', u_v@n): Constant for observable constants,
// Linear for other observable values, the def's own AC otherwise — raised
// when the def-use edge exits a loop nest.
func (a *analyzer) pc(d *dataflow.Def, use ir.Stmt) AC {
	var out AC
	switch {
	case a.observable[d] && a.constDef[d]:
		out = ConstantAC()
	case a.observable[d]:
		out = LinearIn(d.Var.String())
	default:
		out = a.acDef[d]
	}
	// RAISE for every loop containing the def but not the use.
	if d.Node.Stmt != nil {
		for _, l := range a.loopsOf[d.Node.Stmt.ID()] {
			if !a.inside(use.ID(), l) {
				out = Raise(out, a.iterAC(l))
			}
		}
	}
	return out
}

func (a *analyzer) inside(stmtID int, l *ir.WhileStmt) bool {
	if stmtID == l.ID() {
		return true
	}
	for _, w := range a.loopsOf[stmtID] {
		if w == l {
			return true
		}
	}
	return false
}

// iterAC estimates the arithmetic complexity of loop l's iteration count:
// the join of the complexities of the values its condition depends on, at
// least linear.
func (a *analyzer) iterAC(l *ir.WhileStmt) AC {
	out := AC{Type: Linear, Degree: 1}
	for _, v := range ir.ExprVars(l.Cond) {
		out = Max(out, a.useAC(v, l))
	}
	if out.Type == Arbitrary {
		return out
	}
	if out.Degree < 1 {
		out.Degree = 1
	}
	if out.Type < Linear {
		out.Type = Linear
	}
	return out
}

// evalExpr is the paper's EVAL: combines operand complexities according to
// the operator.
func (a *analyzer) evalExpr(e ir.Expr, at ir.Stmt) AC {
	switch e := e.(type) {
	case *ir.Const:
		return ConstantAC()
	case *ir.VarRef:
		return a.useAC(e.Var, at)
	case *ir.Unary:
		x := a.evalExpr(e.X, at)
		if e.Op == token.NOT {
			return Arb(x)
		}
		return x
	case *ir.Binary:
		x := a.evalExpr(e.X, at)
		y := a.evalExpr(e.Y, at)
		switch e.Op {
		case token.PLUS, token.MINUS:
			return Add(x, y)
		case token.STAR:
			return Mul(x, y)
		case token.SLASH:
			return Div(x, y)
		default: // %, comparisons, && || — non-arithmetic operators
			return Arb(x, y)
		}
	case *ir.ConvertExpr:
		return a.evalExpr(e.X, at)
	case *ir.CondExpr:
		return Arb(a.evalExpr(e.C, at), a.evalExpr(e.T, at), a.evalExpr(e.F, at))
	case *ir.IndexExpr, *ir.FieldExpr:
		// Aggregate reads are observable inputs; inside a loop a different
		// element may flow in each iteration, so the input count varies.
		ac := LinearIn(ir.ExprString(e))
		if len(a.loopsOf[at.ID()]) > 0 {
			ac.Varying = true
		}
		return ac
	case *ir.LenExpr:
		// An array length is a single observable input even inside a loop
		// (the array object cannot change while the hidden call runs).
		return LinearIn(ir.ExprString(e))
	case *ir.CallExpr:
		// Call results are computed openly; they are observable inputs.
		return LinearIn(ir.ExprString(e))
	}
	return Arb()
}

// ilpAC computes AC(f_ILP) per the paper's output rule: for a
// bare-variable leak whose sole reaching definition is hidden, the leaked
// function is that definition's expression (AC of the def); otherwise the
// leaked expression is evaluated directly.
func (a *analyzer) ilpAC(ilp *core.ILP) AC {
	at := a.stmtOf(ilp.StmtID)
	if at == nil {
		return Arb()
	}
	if vr, ok := ilp.HiddenExpr.(*ir.VarRef); ok {
		node := a.g.ByStmt[ilp.StmtID]
		if node != nil {
			defs := a.reach.DefsReachingUse(node, vr.Var)
			if len(defs) == 1 && defs[0].Node.Stmt != nil && a.roles[defs[0].Node.Stmt.ID()] == slicer.RoleFull {
				d := defs[0]
				out := a.acDef[d]
				for _, l := range a.loopsOf[d.Node.Stmt.ID()] {
					if !a.inside(ilp.StmtID, l) {
						out = Raise(out, a.iterAC(l))
					}
				}
				return out
			}
		}
	}
	return a.evalExpr(ilp.HiddenExpr, at)
}

func (a *analyzer) stmtOf(id int) ir.Stmt {
	if n := a.g.ByStmt[id]; n != nil {
		return n.Stmt
	}
	return nil
}

// ---------------------------------------------------------------------------
// Control-flow complexity

// contributingDefs returns the hidden definitions feeding the ILP's leaked
// expression, transitively through hidden def-use chains.
func (a *analyzer) contributingDefs(ilp *core.ILP) map[*dataflow.Def]bool {
	seen := make(map[*dataflow.Def]bool)
	var visit func(v *ir.Var, at ir.Stmt)
	visit = func(v *ir.Var, at ir.Stmt) {
		node := a.g.ByStmt[at.ID()]
		if node == nil {
			return
		}
		for _, d := range a.reach.DefsReachingUse(node, v) {
			if seen[d] || d.Node.Stmt == nil {
				continue
			}
			role := a.roles[d.Node.Stmt.ID()]
			if role != slicer.RoleFull && role != slicer.RoleSend {
				continue // open def: the adversary sees it
			}
			seen[d] = true
			if as, ok := d.Node.Stmt.(*ir.AssignStmt); ok {
				for _, u := range ir.ExprVars(as.Rhs) {
					if a.hidden[u] {
						visit(u, d.Node.Stmt)
					}
				}
			}
		}
	}
	at := a.stmtOf(ilp.StmtID)
	if at != nil {
		for _, v := range ir.ExprVars(ilp.HiddenExpr) {
			if a.hidden[v] {
				visit(v, at)
			}
		}
	}
	return seen
}

// predicateHidden reports whether construct st's predicate was moved to the
// hidden component.
func (a *analyzer) predicateHidden(st ir.Stmt) bool {
	if fr, ok := a.sf.Hidden.Constructs[st.ID()]; ok {
		return fr.HidesPredicate
	}
	return false
}

// flowHidden reports whether construct st's control flow was (partially or
// fully) moved to the hidden component.
func (a *analyzer) flowHidden(st ir.Stmt) bool {
	if fr, ok := a.sf.Hidden.Constructs[st.ID()]; ok {
		return fr.HidesFlow
	}
	return false
}

func (a *analyzer) ilpCC(ilp *core.ILP) CC {
	cc := CC{Paths: 1}
	if ilp.Frag.HidesPredicate {
		cc.HiddenPredicates = true
	}
	if ilp.Frag.HidesFlow {
		cc.HiddenFlow = true
	}
	if ilp.Frag.HasLoop {
		cc.PathsVariable = true
	}
	branches := 0
	for d := range a.contributingDefs(ilp) {
		id := d.Node.Stmt.ID()
		for _, en := range a.enclosing[id] {
			switch en := en.(type) {
			case *ir.WhileStmt:
				if a.predicateHidden(en) {
					cc.PathsVariable = true
					cc.HiddenPredicates = true
				}
				if a.flowHidden(en) {
					cc.HiddenFlow = true
				}
			case *ir.IfStmt:
				branches++
				if a.predicateHidden(en) {
					cc.HiddenPredicates = true
				}
				if a.flowHidden(en) {
					cc.HiddenFlow = true
				}
			}
		}
	}
	if !cc.PathsVariable {
		if branches > 20 {
			branches = 20
		}
		cc.Paths = 1 << branches
	}
	return cc
}
