// Package complexity implements the paper's §3 security analysis: it
// characterizes every information leak point (ILP) of a split function by
// its arithmetic complexity (the lattice Constant ≺ Linear ≺ Polynomial ≺
// Rational ≺ Arbitrary, with input count and polynomial degree) and by its
// control-flow complexity (paths constant/variable, predicates open/hidden,
// flow open/hidden). The arithmetic analysis is the iterative def-use
// propagation of the paper's Figure 3 (EVAL / PC / MIN / RAISE), computing
// a conservative lower bound without symbolic evaluation.
package complexity

import (
	"fmt"
	"sort"
	"strings"
)

// Type is the arithmetic complexity class of a leaked function.
type Type int

// Arithmetic complexity classes, ordered by the paper's partial order.
const (
	Constant Type = iota
	Linear
	Polynomial
	Rational
	Arbitrary
)

func (t Type) String() string {
	switch t {
	case Constant:
		return "constant"
	case Linear:
		return "linear"
	case Polynomial:
		return "polynomial"
	case Rational:
		return "rational"
	case Arbitrary:
		return "arbitrary"
	}
	return "?"
}

// maxDegree caps polynomial degrees so the fixpoint iteration terminates.
const maxDegree = 64

// AC is an arithmetic complexity triple <Type, Inputs, Degree>. Inputs
// holds the names of observable values the leaked function depends on;
// Varying marks input sets whose size depends on loop iteration counts
// (the paper's javac case, reported as "varying").
type AC struct {
	Type    Type
	Degree  int
	Inputs  map[string]bool
	Varying bool
}

// ConstantAC is the bottom element.
func ConstantAC() AC { return AC{Type: Constant} }

// LinearIn returns a linear complexity over the named input.
func LinearIn(name string) AC {
	return AC{Type: Linear, Degree: 1, Inputs: map[string]bool{name: true}}
}

// NumInputs returns the input count.
func (a AC) NumInputs() int { return len(a.Inputs) }

// String renders the triple the way the paper writes it.
func (a AC) String() string {
	in := "0"
	if a.Varying {
		in = "varying"
	} else if len(a.Inputs) > 0 {
		in = fmt.Sprintf("%d", len(a.Inputs))
	}
	return fmt.Sprintf("<%s, %s, %d>", a.Type, in, a.Degree)
}

// InputNames returns the sorted input names (for tests).
func (a AC) InputNames() []string {
	names := make([]string, 0, len(a.Inputs))
	for n := range a.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func unionInputs(a, b AC) map[string]bool {
	if len(a.Inputs) == 0 && len(b.Inputs) == 0 {
		return nil
	}
	m := make(map[string]bool, len(a.Inputs)+len(b.Inputs))
	for k := range a.Inputs {
		m[k] = true
	}
	for k := range b.Inputs {
		m[k] = true
	}
	return m
}

func capDeg(d int) int {
	if d > maxDegree {
		return maxDegree
	}
	return d
}

// Less orders complexities: by type, then degree, then input count.
// It defines the MAX/MIN used by the propagation (paper's partial order
// extended to a total order for determinism). Degree is defined only for
// non-arbitrary classes (§3), so two Arbitrary complexities compare by
// inputs alone.
func Less(a, b AC) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Type != Arbitrary && a.Degree != b.Degree {
		return a.Degree < b.Degree
	}
	if a.Varying != b.Varying {
		return !a.Varying
	}
	return len(a.Inputs) < len(b.Inputs)
}

// Max returns the greater of a and b with merged inputs.
func Max(a, b AC) AC {
	out := b
	if Less(b, a) {
		out = a
	}
	out.Inputs = unionInputs(a, b)
	out.Varying = a.Varying || b.Varying
	return out
}

// Min returns the lesser of a and b (inputs come from the chosen side; the
// adversary follows the easiest def-use edge).
func Min(a, b AC) AC {
	if Less(b, a) {
		return b
	}
	return a
}

// Add combines operands of + and -: the class joins, the degree is the max.
func Add(a, b AC) AC {
	out := AC{
		Type:    maxType(a.Type, b.Type),
		Degree:  capDeg(maxInt(a.Degree, b.Degree)),
		Inputs:  unionInputs(a, b),
		Varying: a.Varying || b.Varying,
	}
	return out
}

// Mul combines operands of *: degrees add; two non-constant polynomials
// give at least Polynomial.
func Mul(a, b AC) AC {
	t := maxType(a.Type, b.Type)
	deg := capDeg(a.Degree + b.Degree)
	if a.Type >= Linear && b.Type >= Linear && t < Polynomial {
		t = Polynomial
	}
	if a.Type == Constant {
		t, deg = b.Type, b.Degree
	}
	if b.Type == Constant {
		t, deg = maxType(a.Type, Constant), a.Degree
	}
	return AC{Type: t, Degree: deg, Inputs: unionInputs(a, b), Varying: a.Varying || b.Varying}
}

// Div combines operands of /: a non-constant divisor makes the result a
// rational function.
func Div(a, b AC) AC {
	if b.Type == Constant {
		return AC{Type: a.Type, Degree: a.Degree, Inputs: unionInputs(a, b), Varying: a.Varying || b.Varying}
	}
	t := maxType(maxType(a.Type, b.Type), Rational)
	return AC{Type: t, Degree: capDeg(maxInt(a.Degree, b.Degree)), Inputs: unionInputs(a, b), Varying: a.Varying || b.Varying}
}

// Arb marks the combination as arbitrary (mod, boolean, relational,
// conditional selection).
func Arb(parts ...AC) AC {
	out := AC{Type: Arbitrary}
	for _, p := range parts {
		out.Inputs = unionInputs(out, p)
		out.Varying = out.Varying || p.Varying
		if p.Degree > out.Degree {
			out.Degree = p.Degree
		}
	}
	return out
}

// Raise implements the paper's RAISE: a value flowing out of loop nest L
// may have been combined across Iter(L) iterations, so its complexity is
// raised by the complexity of the iteration count.
func Raise(pc, iter AC) AC {
	if pc.Type == Arbitrary || iter.Type == Arbitrary {
		return Arb(pc, iter)
	}
	deg := capDeg(pc.Degree + iter.Degree)
	t := maxType(pc.Type, iter.Type)
	if deg >= 2 && t < Polynomial {
		t = Polynomial
	}
	if deg >= 1 && t < Linear {
		t = Linear
	}
	return AC{Type: t, Degree: deg, Inputs: unionInputs(pc, iter), Varying: pc.Varying || iter.Varying}
}

func maxType(a, b Type) Type {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Equal reports structural equality (used by the fixpoint loop).
func (a AC) Equal(b AC) bool {
	if a.Type != b.Type || a.Degree != b.Degree || a.Varying != b.Varying || len(a.Inputs) != len(b.Inputs) {
		return false
	}
	for k := range a.Inputs {
		if !b.Inputs[k] {
			return false
		}
	}
	return true
}

// ParseType converts a class name back to its Type (used by table tooling).
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "constant":
		return Constant, nil
	case "linear":
		return Linear, nil
	case "polynomial":
		return Polynomial, nil
	case "rational":
		return Rational, nil
	case "arbitrary":
		return Arbitrary, nil
	}
	return Constant, fmt.Errorf("complexity: unknown type %q", s)
}
