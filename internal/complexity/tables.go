package complexity

// Aggregations reproducing the shape of the paper's Tables 3 and 4.

// Table3Row is one benchmark row of Table 3: the arithmetic-complexity
// distribution of its ILPs.
type Table3Row struct {
	Name       string
	Constant   int
	Linear     int
	Polynomial int
	Rational   int
	Arbitrary  int
	// MaxInputs is the largest observable-input count across ILPs;
	// InputsVarying reports whether any ILP's input count depends on loop
	// iterations (reported as "varying", the paper's javac case).
	MaxInputs     int
	InputsVarying bool
	// MaxDegree is the largest polynomial degree across non-arbitrary ILPs.
	MaxDegree int
}

// Total returns the ILP count in the row.
func (r Table3Row) Total() int {
	return r.Constant + r.Linear + r.Polynomial + r.Rational + r.Arbitrary
}

// Table4Row is one benchmark row of Table 4: control-flow complexity
// counts.
type Table4Row struct {
	Name             string
	PathsVariable    int
	PredicatesHidden int
	FlowHidden       int
}

// Aggregate summarizes per-ILP reports into table rows.
func Aggregate(name string, reports []Report) (Table3Row, Table4Row) {
	t3 := Table3Row{Name: name}
	t4 := Table4Row{Name: name}
	for _, r := range reports {
		switch r.AC.Type {
		case Constant:
			t3.Constant++
		case Linear:
			t3.Linear++
		case Polynomial:
			t3.Polynomial++
		case Rational:
			t3.Rational++
		case Arbitrary:
			t3.Arbitrary++
		}
		if r.AC.Varying {
			t3.InputsVarying = true
		} else if n := r.AC.NumInputs(); n > t3.MaxInputs {
			t3.MaxInputs = n
		}
		if r.AC.Type != Arbitrary && r.AC.Degree > t3.MaxDegree {
			t3.MaxDegree = r.AC.Degree
		}
		if r.CC.PathsVariable {
			t4.PathsVariable++
		}
		if r.CC.HiddenPredicates {
			t4.PredicatesHidden++
		}
		if r.CC.HiddenFlow {
			t4.FlowHidden++
		}
	}
	return t3, t4
}

// MaxAC returns the maximum arithmetic complexity across reports (used by
// the paper's seed-selection rule: pick the local variable whose split
// yields the ILP with the highest maximum arithmetic complexity).
func MaxAC(reports []Report) AC {
	var out AC
	for i, r := range reports {
		if i == 0 || Less(out, r.AC) {
			out = r.AC
		}
	}
	return out
}
