package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatFunc renders a function's IR as readable text, one line per simple
// statement, annotated with statement IDs. Used by golden tests and the CLI.
func FormatFunc(f *Func) string {
	var b strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Name + ": " + p.Type.String()
	}
	fmt.Fprintf(&b, "func %s(%s): %s {\n", f.QName(), strings.Join(params, ", "), f.Result)
	formatStmts(&b, f.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

// FormatStmts renders a statement list at the given indent.
func FormatStmts(stmts []Stmt, indent int) string {
	var b strings.Builder
	formatStmts(&b, stmts, indent)
	return b.String()
}

func formatStmts(b *strings.Builder, stmts []Stmt, ind int) {
	pad := strings.Repeat("    ", ind)
	for _, s := range stmts {
		switch s := s.(type) {
		case *AssignStmt:
			fmt.Fprintf(b, "%s[%d] %s = %s\n", pad, s.ID(), TargetString(s.Lhs), ExprString(s.Rhs))
		case *IfStmt:
			fmt.Fprintf(b, "%s[%d] if %s {\n", pad, s.ID(), ExprString(s.Cond))
			formatStmts(b, s.Then, ind+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", pad)
				formatStmts(b, s.Else, ind+1)
			}
			fmt.Fprintf(b, "%s}\n", pad)
		case *WhileStmt:
			fmt.Fprintf(b, "%s[%d] while %s {\n", pad, s.ID(), ExprString(s.Cond))
			formatStmts(b, s.Body, ind+1)
			if len(s.Post) > 0 {
				fmt.Fprintf(b, "%s} post {\n", pad)
				formatStmts(b, s.Post, ind+1)
			}
			fmt.Fprintf(b, "%s}\n", pad)
		case *ReturnStmt:
			if s.Value != nil {
				fmt.Fprintf(b, "%s[%d] return %s\n", pad, s.ID(), ExprString(s.Value))
			} else {
				fmt.Fprintf(b, "%s[%d] return\n", pad, s.ID())
			}
		case *BreakStmt:
			fmt.Fprintf(b, "%s[%d] break\n", pad, s.ID())
		case *ContinueStmt:
			fmt.Fprintf(b, "%s[%d] continue\n", pad, s.ID())
		case *PrintStmt:
			args := make([]string, len(s.Args))
			for i, a := range s.Args {
				args[i] = ExprString(a)
			}
			fmt.Fprintf(b, "%s[%d] print(%s)\n", pad, s.ID(), strings.Join(args, ", "))
		case *CallStmt:
			fmt.Fprintf(b, "%s[%d] %s\n", pad, s.ID(), ExprString(s.Call))
		case *HCallStmt:
			fmt.Fprintf(b, "%s[%d] %s\n", pad, s.ID(), ExprString(s.Call))
		default:
			fmt.Fprintf(b, "%s[%d] ??? %T\n", pad, s.ID(), s)
		}
	}
}

// TargetString renders an assignment target.
func TargetString(t Target) string {
	switch t := t.(type) {
	case *VarTarget:
		return t.Var.Name
	case *IndexTarget:
		return fmt.Sprintf("%s[%s]", ExprString(t.Arr), ExprString(t.I))
	case *FieldTarget:
		return fmt.Sprintf("%s.%s", ExprString(t.Obj), t.Field)
	}
	return "?"
}

// ExprString renders an IR expression as source-like text.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case nil:
		return "<nil>"
	case *Const:
		switch e.Kind {
		case ConstInt:
			return strconv.FormatInt(e.I, 10)
		case ConstFloat:
			s := strconv.FormatFloat(e.F, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			return s
		case ConstBool:
			return strconv.FormatBool(e.B)
		case ConstString:
			return strconv.Quote(e.S)
		case ConstNull:
			return "null"
		}
	case *VarRef:
		return e.Var.Name
	case *Unary:
		return e.Op.String() + parens(e.X)
	case *Binary:
		return fmt.Sprintf("%s %s %s", parens(e.X), e.Op, parens(e.Y))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", parens(e.Arr), ExprString(e.I))
	case *FieldExpr:
		return fmt.Sprintf("%s.%s", parens(e.Obj), e.Field)
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		name := e.Callee
		if e.Recv != nil {
			if i := strings.IndexByte(name, '.'); i >= 0 {
				name = name[i+1:]
			}
			return fmt.Sprintf("%s.%s(%s)", parens(e.Recv), name, strings.Join(args, ", "))
		}
		return fmt.Sprintf("%s(%s)", name, strings.Join(args, ", "))
	case *NewObjectExpr:
		return fmt.Sprintf("new %s()", e.Class)
	case *NewArrayExpr:
		return fmt.Sprintf("new %s[%s]", e.Elem, ExprString(e.Size))
	case *LenExpr:
		return fmt.Sprintf("len(%s)", ExprString(e.Arr))
	case *CondExpr:
		return fmt.Sprintf("%s ? %s : %s", parens(e.C), parens(e.T), parens(e.F))
	case *ConvertExpr:
		if e.ToFloat {
			return fmt.Sprintf("float(%s)", ExprString(e.X))
		}
		return fmt.Sprintf("int(%s)", ExprString(e.X))
	case *ThisExpr:
		return "this"
	case *HCallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("H(%d, [%s])", e.FragID, strings.Join(args, ", "))
	}
	return fmt.Sprintf("?%T", e)
}

func parens(e Expr) string {
	switch e.(type) {
	case *Binary, *CondExpr:
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
