package ir

import (
	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/token"
	"slicehide/internal/lang/types"
)

// BinOp and UnOp are language-neutral operator enums. Expression nodes
// carry token kinds (the IR is built straight from the AST), but consumers
// that must not depend on the lang packages — the fragment bytecode
// compiler in internal/vm — work in terms of these instead, converting at
// their boundary via BinOpOf/UnOpOf.

// BinOp identifies a binary operator.
type BinOp uint8

// Binary operators. BinAnd/BinOr are the short-circuit forms; evaluators
// that implement short-circuiting themselves never dispatch on them.
const (
	BinInvalid BinOp = iota
	BinAdd
	BinSub
	BinMul
	BinDiv
	BinMod
	BinEq
	BinNeq
	BinLt
	BinLeq
	BinGt
	BinGeq
	BinAnd
	BinOr
)

var binOpNames = [...]string{
	BinInvalid: "?", BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/",
	BinMod: "%", BinEq: "==", BinNeq: "!=", BinLt: "<", BinLeq: "<=",
	BinGt: ">", BinGeq: ">=", BinAnd: "&&", BinOr: "||",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return "?"
}

// BinOpOf converts a token kind to its neutral operator (BinInvalid when
// the kind is not a binary operator).
func BinOpOf(k token.Kind) BinOp {
	switch k {
	case token.PLUS:
		return BinAdd
	case token.MINUS:
		return BinSub
	case token.STAR:
		return BinMul
	case token.SLASH:
		return BinDiv
	case token.PERCENT:
		return BinMod
	case token.EQ:
		return BinEq
	case token.NEQ:
		return BinNeq
	case token.LT:
		return BinLt
	case token.LEQ:
		return BinLeq
	case token.GT:
		return BinGt
	case token.GEQ:
		return BinGeq
	case token.AND:
		return BinAnd
	case token.OR:
		return BinOr
	}
	return BinInvalid
}

// ZeroKind classifies a variable's zero value for consumers that must not
// import the lang packages (the bytecode VM).
type ZeroKind uint8

// Zero-value classes.
const (
	ZeroInt ZeroKind = iota
	ZeroFloat
	ZeroBool
	ZeroString
	ZeroNull
)

// ZeroKindOf classifies v's semantic type.
func ZeroKindOf(v *Var) ZeroKind {
	b, ok := v.Type.(*types.Basic)
	if !ok {
		return ZeroNull
	}
	switch b.Kind {
	case ast.Int:
		return ZeroInt
	case ast.Float:
		return ZeroFloat
	case ast.Bool:
		return ZeroBool
	case ast.String:
		return ZeroString
	}
	return ZeroNull
}

// UnOp identifies a unary operator.
type UnOp uint8

// Unary operators.
const (
	UnInvalid UnOp = iota
	UnNeg
	UnNot
)

// UnOpOf converts a token kind to its neutral unary operator.
func UnOpOf(k token.Kind) UnOp {
	switch k {
	case token.MINUS:
		return UnNeg
	case token.NOT:
		return UnNot
	}
	return UnInvalid
}
