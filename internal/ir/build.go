package ir

import (
	"fmt"

	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/parser"
	"slicehide/internal/lang/types"
)

// Build lowers a type-checked AST program to IR.
func Build(prog *ast.Program, info *types.Info) *Program {
	b := &builder{
		info: info,
		prog: &Program{
			Classes: make(map[string]*Class),
			Funcs:   make(map[string]*Func),
			Heap:    &Var{Name: "$heap", Kind: VarHeap, Type: types.IntType},
		},
		elems: make(map[*Var]*Var),
	}
	for _, cl := range prog.Classes {
		ic := &Class{Name: cl.Name}
		for _, fd := range cl.Fields {
			ic.Fields = append(ic.Fields, &Var{
				Name:  fd.Name,
				Kind:  VarField,
				Type:  b.resolveType(fd.Type),
				Class: cl.Name,
			})
		}
		b.prog.Classes[cl.Name] = ic
	}
	for _, g := range prog.Globals {
		gv := &Var{Name: g.Name, Kind: VarGlobal, Type: b.resolveType(g.Type)}
		b.globals = append(b.globals, gv)
		b.prog.Globals = append(b.prog.Globals, &Global{Var: gv})
	}
	// Global initializers may reference earlier globals.
	for i, g := range prog.Globals {
		if g.Init != nil {
			b.fn = &Func{Name: "$init"}
			b.pushScope()
			b.prog.Globals[i].Init = b.expr(g.Init)
			b.popScope()
			b.fn = nil
		}
	}
	for _, f := range prog.Funcs {
		b.buildFunc(f, "")
	}
	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			b.buildFunc(m, cl.Name)
		}
	}
	return b.prog
}

// Compile parses, checks, and lowers MiniJ source in one step.
func Compile(src string) (*Program, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(astProg)
	if err != nil {
		return nil, err
	}
	return Build(astProg, info), nil
}

// MustCompile is Compile panicking on error; for tests and embedded corpora.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

type builder struct {
	info    *types.Info
	prog    *Program
	globals []*Var
	elems   map[*Var]*Var // base var -> elems pseudo-var

	fn       *Func
	curClass string
	scopes   []map[string]*Var
}

func (b *builder) resolveType(t ast.Type) types.Type {
	switch t := t.(type) {
	case *ast.BasicType:
		switch t.Kind {
		case ast.Int:
			return types.IntType
		case ast.Float:
			return types.FloatType
		case ast.Bool:
			return types.BoolType
		case ast.String:
			return types.StringType
		case ast.Void:
			return types.VoidType
		}
	case *ast.ArrayType:
		return &types.Array{Elem: b.resolveType(t.Elem)}
	case *ast.ClassType:
		if cl, ok := b.info.Classes[t.Name]; ok {
			return cl
		}
	}
	return types.IntType
}

func (b *builder) pushScope() { b.scopes = append(b.scopes, map[string]*Var{}) }
func (b *builder) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) declare(name string, v *Var) {
	b.scopes[len(b.scopes)-1][name] = v
}

// lookup resolves a source name following the checker's rules: innermost
// scope first, then enclosing-class fields, then globals.
func (b *builder) lookup(name string) (*Var, bool) {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if v, ok := b.scopes[i][name]; ok {
			return v, true
		}
	}
	if b.curClass != "" {
		if cl := b.prog.Classes[b.curClass]; cl != nil {
			if fv := cl.Field(name); fv != nil {
				return fv, true
			}
		}
	}
	for _, g := range b.globals {
		if g.Name == name {
			return g, true
		}
	}
	return nil, false
}

// elemsVar returns the pseudo-variable for elements of the array held in
// base expression arr: base[*] if arr is a simple variable, $heap otherwise.
func (b *builder) elemsVar(arr Expr) *Var {
	vr, ok := arr.(*VarRef)
	if !ok {
		return b.prog.Heap
	}
	base := vr.Var
	if ev, ok := b.elems[base]; ok {
		return ev
	}
	var elemType types.Type = types.IntType
	if at, ok := base.Type.(*types.Array); ok {
		elemType = at.Elem
	}
	ev := &Var{Name: base.Name, Kind: VarElems, Type: elemType, Base: base}
	b.elems[base] = ev
	return ev
}

func (b *builder) buildFunc(decl *ast.FuncDecl, class string) {
	f := &Func{Name: decl.Name, Class: class}
	b.fn = f
	b.curClass = class
	sig := b.info.Funcs[f.QName()]
	f.Result = sig.Result
	b.pushScope()
	for i, p := range decl.Params {
		pv := f.AddParam(p.Name, sig.Params[i])
		b.declare(p.Name, pv)
	}
	f.Body = b.stmts(decl.Body.Stmts)
	b.popScope()
	b.prog.Funcs[f.QName()] = f
	b.prog.Order = append(b.prog.Order, f.QName())
	b.fn = nil
	b.curClass = ""
}

func (b *builder) stmts(list []ast.Stmt) []Stmt {
	var out []Stmt
	for _, s := range list {
		out = append(out, b.stmt(s)...)
	}
	return out
}

// zeroValue returns the implicit initial value for a declared variable.
func zeroValue(t types.Type) Expr {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind {
		case ast.Int:
			return Int(0)
		case ast.Float:
			return Float(0)
		case ast.Bool:
			return Bool(false)
		case ast.String:
			return Str("")
		}
	}
	return Null()
}

func (b *builder) stmt(s ast.Stmt) []Stmt {
	switch s := s.(type) {
	case *ast.VarDecl:
		t := b.resolveType(s.Type)
		v := b.fn.AddLocal(s.Name, t)
		init := zeroValue(t)
		if s.Init != nil {
			init = b.expr(s.Init)
		}
		st := &AssignStmt{stmtBase: b.fn.NewStmt(s.Pos()), Lhs: &VarTarget{Var: v}, Rhs: init}
		b.declare(s.Name, v)
		return []Stmt{st}
	case *ast.Assign:
		lhs := b.target(s.Lhs)
		rhs := b.expr(s.Rhs)
		return []Stmt{&AssignStmt{stmtBase: b.fn.NewStmt(s.Pos()), Lhs: lhs, Rhs: rhs}}
	case *ast.If:
		st := &IfStmt{stmtBase: b.fn.NewStmt(s.Pos()), Cond: b.expr(s.Cond)}
		b.pushScope()
		st.Then = b.stmts(s.Then.Stmts)
		b.popScope()
		if s.Else != nil {
			b.pushScope()
			st.Else = b.stmts(s.Else.Stmts)
			b.popScope()
		}
		return []Stmt{st}
	case *ast.While:
		st := &WhileStmt{stmtBase: b.fn.NewStmt(s.Pos()), Cond: b.expr(s.Cond)}
		b.pushScope()
		st.Body = b.stmts(s.Body.Stmts)
		b.popScope()
		return []Stmt{st}
	case *ast.For:
		b.pushScope()
		var out []Stmt
		if s.Init != nil {
			out = append(out, b.stmt(s.Init)...)
		}
		var cond Expr = Bool(true)
		if s.Cond != nil {
			cond = b.expr(s.Cond)
		}
		loop := &WhileStmt{stmtBase: b.fn.NewStmt(s.Pos()), Cond: cond}
		b.pushScope()
		loop.Body = b.stmts(s.Body.Stmts)
		b.popScope()
		if s.Post != nil {
			loop.Post = b.stmt(s.Post)
		}
		b.popScope()
		return append(out, loop)
	case *ast.Return:
		st := &ReturnStmt{stmtBase: b.fn.NewStmt(s.Pos())}
		if s.Value != nil {
			st.Value = b.expr(s.Value)
		}
		return []Stmt{st}
	case *ast.Break:
		return []Stmt{&BreakStmt{stmtBase: b.fn.NewStmt(s.Pos())}}
	case *ast.Continue:
		return []Stmt{&ContinueStmt{stmtBase: b.fn.NewStmt(s.Pos())}}
	case *ast.Print:
		st := &PrintStmt{stmtBase: b.fn.NewStmt(s.Pos())}
		for _, a := range s.Args {
			st.Args = append(st.Args, b.expr(a))
		}
		return []Stmt{st}
	case *ast.ExprStmt:
		call, ok := b.expr(s.X).(*CallExpr)
		if !ok {
			panic(fmt.Sprintf("ir: expression statement is not a call at %s", s.Pos()))
		}
		return []Stmt{&CallStmt{stmtBase: b.fn.NewStmt(s.Pos()), Call: call}}
	case *ast.Block:
		b.pushScope()
		out := b.stmts(s.Stmts)
		b.popScope()
		return out
	}
	panic(fmt.Sprintf("ir: unknown statement %T", s))
}

func (b *builder) target(e ast.Expr) Target {
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := b.lookup(e.Name)
		if !ok {
			panic(fmt.Sprintf("ir: unresolved variable %s at %s", e.Name, e.Pos()))
		}
		if v.Kind == VarField {
			return &FieldTarget{Obj: &ThisExpr{Class: b.curClass}, Field: v.Name, Class: v.Class, FieldVar: v}
		}
		return &VarTarget{Var: v}
	case *ast.Index:
		arr := b.expr(e.Arr)
		return &IndexTarget{Arr: arr, I: b.expr(e.I), ElemsVar: b.elemsVar(arr)}
	case *ast.FieldAccess:
		obj := b.expr(e.Obj)
		cls := b.classOf(e.Obj)
		return &FieldTarget{Obj: obj, Field: e.Name, Class: cls, FieldVar: b.fieldVar(cls, e.Name)}
	}
	panic(fmt.Sprintf("ir: invalid assignment target %T", e))
}

func (b *builder) classOf(obj ast.Expr) string {
	if t, ok := b.info.TypeOf(obj).(*types.Class); ok {
		return t.Name
	}
	return ""
}

func (b *builder) fieldVar(class, field string) *Var {
	if cl := b.prog.Classes[class]; cl != nil {
		if fv := cl.Field(field); fv != nil {
			return fv
		}
	}
	return b.prog.Heap
}

func (b *builder) expr(e ast.Expr) Expr {
	switch e := e.(type) {
	case *ast.IntLit:
		return Int(e.Value)
	case *ast.FloatLit:
		return Float(e.Value)
	case *ast.BoolLit:
		return Bool(e.Value)
	case *ast.StringLit:
		return Str(e.Value)
	case *ast.NullLit:
		return Null()
	case *ast.Ident:
		v, ok := b.lookup(e.Name)
		if !ok {
			panic(fmt.Sprintf("ir: unresolved variable %s at %s", e.Name, e.Pos()))
		}
		if v.Kind == VarField {
			return &FieldExpr{Obj: &ThisExpr{Class: b.curClass}, Field: v.Name, Class: v.Class, FieldVar: v}
		}
		return &VarRef{Var: v}
	case *ast.Unary:
		return &Unary{Op: e.Op, X: b.expr(e.X)}
	case *ast.Binary:
		return &Binary{Op: e.Op, X: b.expr(e.X), Y: b.expr(e.Y)}
	case *ast.Index:
		arr := b.expr(e.Arr)
		return &IndexExpr{Arr: arr, I: b.expr(e.I), ElemsVar: b.elemsVar(arr)}
	case *ast.FieldAccess:
		obj := b.expr(e.Obj)
		cls := b.classOf(e.Obj)
		return &FieldExpr{Obj: obj, Field: e.Name, Class: cls, FieldVar: b.fieldVar(cls, e.Name)}
	case *ast.Call:
		var callee string
		var recv Expr
		var result types.Type = types.VoidType
		// Sibling methods shadow top-level functions (matches the checker).
		if b.curClass != "" {
			if sig, ok := b.info.Funcs[b.curClass+"."+e.Name]; ok {
				callee, result = b.curClass+"."+e.Name, sig.Result
				recv = &ThisExpr{Class: b.curClass}
			}
		}
		if callee == "" {
			if sig, ok := b.info.Funcs[e.Name]; ok {
				callee, result = e.Name, sig.Result
			}
		}
		if callee == "" {
			panic(fmt.Sprintf("ir: unresolved function %s at %s", e.Name, e.Pos()))
		}
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = b.expr(a)
		}
		return &CallExpr{Callee: callee, Recv: recv, Args: args, Result: result}
	case *ast.MethodCall:
		cls := b.classOf(e.Recv)
		callee := cls + "." + e.Name
		sig := b.info.Funcs[callee]
		if sig == nil {
			panic(fmt.Sprintf("ir: unresolved method %s at %s", callee, e.Pos()))
		}
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = b.expr(a)
		}
		return &CallExpr{Callee: callee, Recv: b.expr(e.Recv), Args: args, Result: sig.Result}
	case *ast.NewObject:
		return &NewObjectExpr{Class: e.Name}
	case *ast.NewArray:
		return &NewArrayExpr{Elem: b.resolveType(e.Elem), Size: b.expr(e.Size)}
	case *ast.LenExpr:
		return &LenExpr{Arr: b.expr(e.Arr)}
	case *ast.Cond:
		return &CondExpr{C: b.expr(e.C), T: b.expr(e.T), F: b.expr(e.F)}
	case *ast.Convert:
		return &ConvertExpr{ToFloat: e.To == ast.Float, X: b.expr(e.X)}
	}
	panic(fmt.Sprintf("ir: unknown expression %T", e))
}
