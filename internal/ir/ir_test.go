package ir

import (
	"strings"
	"testing"

	"slicehide/internal/lang/token"
)

const sampleSrc = `
var g: int = 10;

class Stack {
    field arr: int[];
    field top: int;
    method push(x: int) {
        arr[top] = x;
        top = top + 1;
    }
    method pop(): int {
        top = top - 1;
        return arr[top];
    }
}

func f(x: int, y: int, z: int): int {
    var a: int = 3 * x + y;
    var sum: int = 0;
    for (var i: int = a; i < z; i++) {
        sum = sum + 2 * i;
        if (sum > 1000) { break; }
    }
    return sum + g;
}

func main() {
    var s: Stack = new Stack();
    s.arr = new int[16];
    s.push(f(1, 2, 30));
    print(s.pop());
}
`

func TestCompileSample(t *testing.T) {
	p, err := Compile(sampleSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for _, qn := range []string{"f", "main", "Stack.push", "Stack.pop"} {
		if p.Func(qn) == nil {
			t.Errorf("missing func %s", qn)
		}
	}
	if len(p.Globals) != 1 || p.Globals[0].Var.Name != "g" {
		t.Errorf("globals: %+v", p.Globals)
	}
	if got := ExprString(p.Globals[0].Init); got != "10" {
		t.Errorf("g init: %s", got)
	}
}

func TestForLowering(t *testing.T) {
	p := MustCompile(sampleSrc)
	f := p.Func("f")
	// Body: a=..., sum=0, i=a, while, return.
	if len(f.Body) != 5 {
		t.Fatalf("f body has %d stmts:\n%s", len(f.Body), FormatFunc(f))
	}
	w, ok := f.Body[3].(*WhileStmt)
	if !ok {
		t.Fatalf("stmt 3 is %T", f.Body[3])
	}
	if len(w.Post) != 1 {
		t.Fatalf("post missing: %s", FormatFunc(f))
	}
	if got := ExprString(w.Cond); got != "i < z" {
		t.Errorf("cond: %s", got)
	}
}

func TestContinueGoesToPost(t *testing.T) {
	p := MustCompile(`
func f(n: int): int {
    var sum: int = 0;
    for (var i: int = 0; i < n; i++) {
        if (i % 2 == 0) { continue; }
        sum = sum + i;
    }
    return sum;
}`)
	f := p.Func("f")
	w := f.Body[2].(*WhileStmt)
	foundContinue := false
	WalkStmts(w.Body, func(s Stmt) bool {
		if _, ok := s.(*ContinueStmt); ok {
			foundContinue = true
		}
		return true
	})
	if !foundContinue {
		t.Fatal("continue not preserved")
	}
}

func TestStmtIDsUnique(t *testing.T) {
	p := MustCompile(sampleSrc)
	for _, f := range p.Funcs {
		seen := map[int]bool{}
		WalkStmts(f.Body, func(s Stmt) bool {
			if seen[s.ID()] {
				t.Errorf("%s: duplicate stmt id %d", f.QName(), s.ID())
			}
			seen[s.ID()] = true
			return true
		})
	}
}

func TestShadowedLocalsGetDistinctVars(t *testing.T) {
	p := MustCompile(`
func f(): int {
    var x: int = 1;
    if (x > 0) {
        var x: int = 2;
        print(x);
    }
    return x;
}`)
	f := p.Func("f")
	if len(f.Locals) != 2 {
		t.Fatalf("locals: %d", len(f.Locals))
	}
	if f.Locals[0] == f.Locals[1] || f.Locals[0].Name == f.Locals[1].Name {
		t.Errorf("shadowed locals share identity: %v %v", f.Locals[0], f.Locals[1])
	}
	// The return must reference the outer x.
	ret := f.Body[2].(*ReturnStmt)
	vr := ret.Value.(*VarRef)
	if vr.Var != f.Locals[0] {
		t.Errorf("return references %s, want outer x", vr.Var)
	}
}

func TestImplicitFieldAccess(t *testing.T) {
	p := MustCompile(`
class C {
    field v: int;
    method bump() { v = v + 1; }
}
func main() { var c: C = new C(); c.bump(); }`)
	m := p.Func("C.bump")
	as := m.Body[0].(*AssignStmt)
	ft, ok := as.Lhs.(*FieldTarget)
	if !ok {
		t.Fatalf("lhs is %T", as.Lhs)
	}
	if _, ok := ft.Obj.(*ThisExpr); !ok {
		t.Errorf("obj is %T, want ThisExpr", ft.Obj)
	}
	if ft.FieldVar == nil || ft.FieldVar.Kind != VarField {
		t.Errorf("field var: %+v", ft.FieldVar)
	}
}

func TestSiblingMethodCall(t *testing.T) {
	p := MustCompile(`
class C {
    field v: int;
    method a(): int { return b() + 1; }
    method b(): int { return v; }
}
func main() { var c: C = new C(); print(c.a()); }`)
	m := p.Func("C.a")
	ret := m.Body[0].(*ReturnStmt)
	bin := ret.Value.(*Binary)
	call := bin.X.(*CallExpr)
	if call.Callee != "C.b" {
		t.Errorf("callee: %s", call.Callee)
	}
	if _, ok := call.Recv.(*ThisExpr); !ok {
		t.Errorf("recv: %T", call.Recv)
	}
}

func TestElemsVarShared(t *testing.T) {
	p := MustCompile(`
func f() {
    var a: int[] = new int[4];
    a[0] = 1;
    var x: int = a[0];
    print(x);
}`)
	f := p.Func("f")
	st1 := f.Body[1].(*AssignStmt)
	it := st1.Lhs.(*IndexTarget)
	st2 := f.Body[2].(*AssignStmt)
	ie := st2.Rhs.(*IndexExpr)
	if it.ElemsVar != ie.ElemsVar {
		t.Errorf("elems pseudo-var not shared: %v vs %v", it.ElemsVar, ie.ElemsVar)
	}
	if it.ElemsVar.Kind != VarElems {
		t.Errorf("kind: %v", it.ElemsVar.Kind)
	}
}

func TestHeapVarForComplexBases(t *testing.T) {
	p := MustCompile(`
func f(m: int[][]) {
    m[0][1] = 5;
}`)
	f := p.Func("f")
	as := f.Body[0].(*AssignStmt)
	it := as.Lhs.(*IndexTarget)
	if it.ElemsVar != p.Heap {
		t.Errorf("nested index should use $heap, got %v", it.ElemsVar)
	}
}

func TestUsedAndDefinedVars(t *testing.T) {
	p := MustCompile(`
func f(x: int): int {
    var a: int = x + 1;
    var b: int[] = new int[4];
    b[a] = a * 2;
    return a + b[0];
}`)
	f := p.Func("f")
	def0 := DefinedVar(f.Body[0])
	if def0 == nil || def0.Name != "a" {
		t.Errorf("def of stmt0: %v", def0)
	}
	uses0 := UsedVars(f.Body[0])
	if len(uses0) != 1 || uses0[0].Name != "x" {
		t.Errorf("uses of stmt0: %v", uses0)
	}
	// b[a] = a*2 defines the elems pseudo-var and uses b, a.
	def2 := DefinedVar(f.Body[2])
	if def2 == nil || def2.Kind != VarElems {
		t.Errorf("def of stmt2: %v", def2)
	}
	names := map[string]bool{}
	for _, u := range UsedVars(f.Body[2]) {
		names[u.String()] = true
	}
	if !names["b"] || !names["a"] {
		t.Errorf("uses of stmt2: %v", names)
	}
	// return a + b[0] uses a, b, and b[*].
	names = map[string]bool{}
	for _, u := range UsedVars(f.Body[3]) {
		names[u.String()] = true
	}
	if !names["a"] || !names["b"] || !names["b[*]"] {
		t.Errorf("uses of return: %v", names)
	}
}

func TestHasCall(t *testing.T) {
	p := MustCompile(`
func g(): int { return 1; }
func f(): int {
    var a: int = g() + 2;
    var b: int = a * 3;
    return b;
}`)
	f := p.Func("f")
	if !HasCall(f.Body[0].(*AssignStmt).Rhs) {
		t.Error("g()+2 should report a call")
	}
	if HasCall(f.Body[1].(*AssignStmt).Rhs) {
		t.Error("a*3 should not report a call")
	}
}

func TestCloneExprDeep(t *testing.T) {
	p := MustCompile(`func f(x: int): int { return (x + 1) * (x - 2); }`)
	f := p.Func("f")
	orig := f.Body[0].(*ReturnStmt).Value
	cl := CloneExpr(orig)
	if ExprString(cl) != ExprString(orig) {
		t.Fatalf("clone differs: %s vs %s", ExprString(cl), ExprString(orig))
	}
	// Mutating the clone must not affect the original.
	cl.(*Binary).Op = token.PLUS
	if ExprString(cl) == ExprString(orig) {
		t.Error("clone shares structure with original")
	}
}

func TestFormatFunc(t *testing.T) {
	p := MustCompile(sampleSrc)
	text := FormatFunc(p.Func("f"))
	for _, want := range []string{"func f(", "while i < z", "return sum + g", "[0]"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted output missing %q:\n%s", want, text)
		}
	}
}

func TestZeroValueInit(t *testing.T) {
	p := MustCompile(`func f() { var x: int; var y: float; var b: bool; var s: string; var a: int[]; print(x, y, b, s, a); }`)
	f := p.Func("f")
	wants := []string{"0", "0.0", "false", `""`, "null"}
	for i, w := range wants {
		as := f.Body[i].(*AssignStmt)
		if got := ExprString(as.Rhs); got != w {
			t.Errorf("zero init %d: got %s, want %s", i, got, w)
		}
	}
}
