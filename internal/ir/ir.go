// Package ir defines the intermediate representation that all analyses and
// the splitting transformation operate on. The IR keeps MiniJ's structured
// control flow (the language has no goto), numbers every simple statement
// with a unique ID, and resolves every name to a Var identity so that
// shadowing cannot confuse the dataflow analyses.
package ir

import (
	"fmt"

	"slicehide/internal/lang/token"
	"slicehide/internal/lang/types"
)

// VarKind classifies a Var.
type VarKind int

// Var kinds. Elems is a pseudo-variable standing for "the elements of the
// array held by base variable X"; it gives array reads/writes conservative
// def-use edges without a points-to analysis.
const (
	VarLocal VarKind = iota
	VarParam
	VarGlobal
	VarField
	VarElems
	VarHeap // catch-all pseudo-variable for aggregate state not tied to a base variable
)

func (k VarKind) String() string {
	switch k {
	case VarLocal:
		return "local"
	case VarParam:
		return "param"
	case VarGlobal:
		return "global"
	case VarField:
		return "field"
	case VarElems:
		return "elems"
	case VarHeap:
		return "heap"
	}
	return "?"
}

// Var is a resolved variable identity. Two references to the same Var are
// guaranteed to denote the same storage (for locals/params) or the same
// conservative storage class (globals, fields, array-element pseudo-vars).
type Var struct {
	Name  string // source name; uniquified for shadowed locals ("x", "x$1")
	Kind  VarKind
	Type  types.Type
	Class string // owning class for VarField
	Base  *Var   // for VarElems: the array-holding variable
}

func (v *Var) String() string {
	switch v.Kind {
	case VarField:
		return v.Class + "." + v.Name
	case VarElems:
		return v.Base.String() + "[*]"
	}
	return v.Name
}

// IsScalar reports whether v holds a hideable scalar value.
func (v *Var) IsScalar() bool { return types.IsScalar(v.Type) }

// ---------------------------------------------------------------------------
// Expressions

// Expr is an IR expression.
type Expr interface {
	exprNode()
}

// ConstKind tags constant values.
type ConstKind int

// Constant kinds.
const (
	ConstInt ConstKind = iota
	ConstFloat
	ConstBool
	ConstString
	ConstNull
)

// Const is a literal value.
type Const struct {
	Kind ConstKind
	I    int64
	F    float64
	B    bool
	S    string
}

// Int returns an integer constant.
func Int(v int64) *Const { return &Const{Kind: ConstInt, I: v} }

// Float returns a float constant.
func Float(v float64) *Const { return &Const{Kind: ConstFloat, F: v} }

// Bool returns a boolean constant.
func Bool(v bool) *Const { return &Const{Kind: ConstBool, B: v} }

// Str returns a string constant.
func Str(v string) *Const { return &Const{Kind: ConstString, S: v} }

// Null returns the null constant.
func Null() *Const { return &Const{Kind: ConstNull} }

// VarRef reads a variable.
type VarRef struct{ Var *Var }

// Unary applies a prefix operator (MINUS or NOT).
type Unary struct {
	Op token.Kind
	X  Expr
}

// Binary applies an infix operator.
type Binary struct {
	Op   token.Kind
	X, Y Expr
}

// IndexExpr reads Arr[I].
type IndexExpr struct {
	Arr Expr
	I   Expr
	// ElemsVar is the pseudo-variable this read uses (base[*] or $heap).
	ElemsVar *Var
}

// FieldExpr reads Obj.Field.
type FieldExpr struct {
	Obj      Expr
	Field    string
	Class    string
	FieldVar *Var // conservative Class.Field variable
}

// CallExpr invokes a function ("f") or method ("C.m", with Recv set).
type CallExpr struct {
	Callee string // qualified name
	Recv   Expr   // nil for top-level functions
	Args   []Expr
	Result types.Type
}

// NewObjectExpr instantiates a class.
type NewObjectExpr struct{ Class string }

// NewArrayExpr allocates an array of Size elements.
type NewArrayExpr struct {
	Elem types.Type
	Size Expr
}

// LenExpr is len(Arr).
type LenExpr struct{ Arr Expr }

// CondExpr is C ? T : F.
type CondExpr struct{ C, T, F Expr }

// ConvertExpr is a numeric conversion: int(X) or float(X).
type ConvertExpr struct {
	ToFloat bool // true = float(X), false = int(X)
	X       Expr
}

// ThisExpr is the implicit receiver inside a method.
type ThisExpr struct{ Class string }

// HCallExpr is a call into the hidden component: H(frag, args...). It only
// appears in open components produced by the splitting transformation.
type HCallExpr struct {
	FragID int
	Args   []Expr
	// Leaks reports whether the returned value is used by the open
	// component (i.e., this call site is an information leak point).
	Leaks bool
	// Component, when non-empty, names the hidden component to call
	// instead of the enclosing function's own (used by the hidden-globals
	// and hidden-fields extensions).
	Component string
	// Obj, when non-nil, evaluates to the object whose per-instance hidden
	// store the call addresses (hidden class fields); its instance id is
	// sent as the activation id.
	Obj Expr
	// NoReply marks statement-position calls whose value is discarded and
	// which leak nothing: a pipelined transport may send them one-way
	// instead of blocking for a round trip. Set by the splitter; only
	// meaningful inside an HCallStmt.
	NoReply bool
}

func (*Const) exprNode()         {}
func (*VarRef) exprNode()        {}
func (*Unary) exprNode()         {}
func (*Binary) exprNode()        {}
func (*IndexExpr) exprNode()     {}
func (*FieldExpr) exprNode()     {}
func (*CallExpr) exprNode()      {}
func (*NewObjectExpr) exprNode() {}
func (*NewArrayExpr) exprNode()  {}
func (*LenExpr) exprNode()       {}
func (*CondExpr) exprNode()      {}
func (*ConvertExpr) exprNode()   {}
func (*ThisExpr) exprNode()      {}
func (*HCallExpr) exprNode()     {}

// ---------------------------------------------------------------------------
// Targets (assignable places)

// Target is the left-hand side of an assignment.
type Target interface {
	targetNode()
}

// VarTarget assigns to a variable.
type VarTarget struct{ Var *Var }

// IndexTarget assigns to Arr[I].
type IndexTarget struct {
	Arr      Expr
	I        Expr
	ElemsVar *Var
}

// FieldTarget assigns to Obj.Field.
type FieldTarget struct {
	Obj      Expr
	Field    string
	Class    string
	FieldVar *Var
}

func (*VarTarget) targetNode()   {}
func (*IndexTarget) targetNode() {}
func (*FieldTarget) targetNode() {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is an IR statement. Every Stmt has a function-unique ID.
type Stmt interface {
	stmtNode()
	ID() int
	Pos() token.Pos
}

type stmtBase struct {
	id  int
	pos token.Pos
}

func (s stmtBase) ID() int        { return s.id }
func (s stmtBase) Pos() token.Pos { return s.pos }

// AssignStmt stores Rhs into Lhs.
type AssignStmt struct {
	stmtBase
	Lhs Target
	Rhs Expr
}

// IfStmt is a structured conditional.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// WhileStmt is a pre-tested loop. Post holds statements executed after the
// body and before re-testing the condition (the `post` clause of a lowered
// for-loop); continue transfers control to Post.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body []Stmt
	Post []Stmt
}

// ReturnStmt exits the function.
type ReturnStmt struct {
	stmtBase
	Value Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt jumps to the Post section of the innermost loop.
type ContinueStmt struct{ stmtBase }

// PrintStmt writes to program output.
type PrintStmt struct {
	stmtBase
	Args []Expr
}

// CallStmt evaluates a call for its side effects.
type CallStmt struct {
	stmtBase
	Call *CallExpr
}

// HCallStmt invokes the hidden component and discards the returned value
// ("any"). Produced only by the splitting transformation.
type HCallStmt struct {
	stmtBase
	Call *HCallExpr
}

func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*PrintStmt) stmtNode()    {}
func (*CallStmt) stmtNode()     {}
func (*HCallStmt) stmtNode()    {}

// ---------------------------------------------------------------------------
// Functions, classes, programs

// Func is a function or method in IR form.
type Func struct {
	Name   string
	Class  string // empty for top-level functions
	Params []*Var
	Locals []*Var // declared locals, in declaration order
	Result types.Type
	Body   []Stmt

	nextStmtID int
	varsByName map[string]*Var // uniquified name -> var (locals+params)
}

// QName returns "Class.Name" for methods and "Name" for functions.
func (f *Func) QName() string {
	if f.Class != "" {
		return f.Class + "." + f.Name
	}
	return f.Name
}

// NewStmtID allocates the next statement ID for f.
func (f *Func) NewStmtID() int {
	id := f.nextStmtID
	f.nextStmtID++
	return id
}

// NumStmtIDs returns an upper bound on statement IDs allocated so far.
func (f *Func) NumStmtIDs() int { return f.nextStmtID }

// NewStmt constructs the statement base for a new statement of f.
func (f *Func) NewStmt(pos token.Pos) stmtBase {
	return stmtBase{id: f.NewStmtID(), pos: pos}
}

// AddLocal registers a fresh local variable, uniquifying the name.
func (f *Func) AddLocal(name string, t types.Type) *Var {
	if f.varsByName == nil {
		f.varsByName = make(map[string]*Var)
	}
	unique := name
	for i := 1; ; i++ {
		if _, taken := f.varsByName[unique]; !taken {
			break
		}
		unique = fmt.Sprintf("%s$%d", name, i)
	}
	v := &Var{Name: unique, Kind: VarLocal, Type: t}
	f.varsByName[unique] = v
	f.Locals = append(f.Locals, v)
	return v
}

// AddParam registers a parameter variable.
func (f *Func) AddParam(name string, t types.Type) *Var {
	if f.varsByName == nil {
		f.varsByName = make(map[string]*Var)
	}
	v := &Var{Name: name, Kind: VarParam, Type: t}
	f.varsByName[name] = v
	f.Params = append(f.Params, v)
	return v
}

// LookupVar finds a local or parameter by (uniquified) name.
func (f *Func) LookupVar(name string) *Var { return f.varsByName[name] }

// Class describes a class's fields in IR form.
type Class struct {
	Name   string
	Fields []*Var // VarField vars, in declaration order
}

// Field returns the field var named name, or nil.
func (c *Class) Field(name string) *Var {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global is a module-level variable with an optional initializer.
type Global struct {
	Var  *Var
	Init Expr // may be nil
}

// Program is a whole MiniJ program in IR form.
type Program struct {
	Globals []*Global
	Classes map[string]*Class
	Funcs   map[string]*Func // keyed by qualified name
	Order   []string         // function qualified names in source order
	Heap    *Var             // the $heap pseudo-variable
}

// Func returns the function with the given qualified name, or nil.
func (p *Program) Func(qname string) *Func { return p.Funcs[qname] }

// ---------------------------------------------------------------------------
// Traversal helpers

// WalkStmts visits every statement in the list (recursively, pre-order).
// If fn returns false, children of that statement are not visited.
func WalkStmts(stmts []Stmt, fn func(Stmt) bool) {
	for _, s := range stmts {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Stmt) bool) {
	if !fn(s) {
		return
	}
	switch s := s.(type) {
	case *IfStmt:
		WalkStmts(s.Then, fn)
		WalkStmts(s.Else, fn)
	case *WhileStmt:
		WalkStmts(s.Body, fn)
		WalkStmts(s.Post, fn)
	}
}

// WalkExpr visits e and all subexpressions in pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch e := e.(type) {
	case *Unary:
		WalkExpr(e.X, fn)
	case *Binary:
		WalkExpr(e.X, fn)
		WalkExpr(e.Y, fn)
	case *IndexExpr:
		WalkExpr(e.Arr, fn)
		WalkExpr(e.I, fn)
	case *FieldExpr:
		WalkExpr(e.Obj, fn)
	case *CallExpr:
		WalkExpr(e.Recv, fn)
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *NewArrayExpr:
		WalkExpr(e.Size, fn)
	case *LenExpr:
		WalkExpr(e.Arr, fn)
	case *CondExpr:
		WalkExpr(e.C, fn)
		WalkExpr(e.T, fn)
		WalkExpr(e.F, fn)
	case *ConvertExpr:
		WalkExpr(e.X, fn)
	case *HCallExpr:
		WalkExpr(e.Obj, fn)
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	}
}

// StmtExprs calls fn for every top-level expression of s (not descending
// into sub-statements of structured statements).
func StmtExprs(s Stmt, fn func(Expr)) {
	switch s := s.(type) {
	case *AssignStmt:
		switch t := s.Lhs.(type) {
		case *IndexTarget:
			fn(t.Arr)
			fn(t.I)
		case *FieldTarget:
			fn(t.Obj)
		}
		fn(s.Rhs)
	case *IfStmt:
		fn(s.Cond)
	case *WhileStmt:
		fn(s.Cond)
	case *ReturnStmt:
		if s.Value != nil {
			fn(s.Value)
		}
	case *PrintStmt:
		for _, a := range s.Args {
			fn(a)
		}
	case *CallStmt:
		fn(s.Call)
	case *HCallStmt:
		fn(s.Call)
	}
}

// UsedVars returns the variables read by statement s (top-level expressions
// only; for structured statements this is the condition).
func UsedVars(s Stmt) []*Var {
	var out []*Var
	seen := map[*Var]bool{}
	add := func(v *Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	StmtExprs(s, func(e Expr) {
		WalkExpr(e, func(x Expr) {
			switch x := x.(type) {
			case *VarRef:
				add(x.Var)
			case *IndexExpr:
				add(x.ElemsVar)
			case *FieldExpr:
				add(x.FieldVar)
			}
		})
	})
	return out
}

// DefinedVar returns the variable defined by s: the assigned variable for a
// VarTarget assignment, the elems/field pseudo-variable for aggregate
// stores, or nil if s defines nothing.
func DefinedVar(s Stmt) *Var {
	a, ok := s.(*AssignStmt)
	if !ok {
		return nil
	}
	switch t := a.Lhs.(type) {
	case *VarTarget:
		return t.Var
	case *IndexTarget:
		return t.ElemsVar
	case *FieldTarget:
		return t.FieldVar
	}
	return nil
}

// ExprVars returns all variables read anywhere inside e.
func ExprVars(e Expr) []*Var {
	var out []*Var
	seen := map[*Var]bool{}
	WalkExpr(e, func(x Expr) {
		var v *Var
		switch x := x.(type) {
		case *VarRef:
			v = x.Var
		case *IndexExpr:
			v = x.ElemsVar
		case *FieldExpr:
			v = x.FieldVar
		}
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	})
	return out
}

// HasCall reports whether e contains a function/method call or allocation.
func HasCall(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) {
		switch x.(type) {
		case *CallExpr, *NewObjectExpr, *NewArrayExpr:
			found = true
		}
	})
	return found
}

// CloneExpr returns a deep copy of e. Var identities are shared (they are
// resolution results, not storage).
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Const:
		c := *e
		return &c
	case *VarRef:
		return &VarRef{Var: e.Var}
	case *Unary:
		return &Unary{Op: e.Op, X: CloneExpr(e.X)}
	case *Binary:
		return &Binary{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y)}
	case *IndexExpr:
		return &IndexExpr{Arr: CloneExpr(e.Arr), I: CloneExpr(e.I), ElemsVar: e.ElemsVar}
	case *FieldExpr:
		return &FieldExpr{Obj: CloneExpr(e.Obj), Field: e.Field, Class: e.Class, FieldVar: e.FieldVar}
	case *CallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &CallExpr{Callee: e.Callee, Recv: CloneExpr(e.Recv), Args: args, Result: e.Result}
	case *NewObjectExpr:
		return &NewObjectExpr{Class: e.Class}
	case *ThisExpr:
		return &ThisExpr{Class: e.Class}
	case *NewArrayExpr:
		return &NewArrayExpr{Elem: e.Elem, Size: CloneExpr(e.Size)}
	case *LenExpr:
		return &LenExpr{Arr: CloneExpr(e.Arr)}
	case *CondExpr:
		return &CondExpr{C: CloneExpr(e.C), T: CloneExpr(e.T), F: CloneExpr(e.F)}
	case *ConvertExpr:
		return &ConvertExpr{ToFloat: e.ToFloat, X: CloneExpr(e.X)}
	case *HCallExpr:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = CloneExpr(a)
		}
		return &HCallExpr{FragID: e.FragID, Args: args, Leaks: e.Leaks, Component: e.Component, Obj: CloneExpr(e.Obj), NoReply: e.NoReply}
	}
	panic(fmt.Sprintf("ir.CloneExpr: unknown expr %T", e))
}
