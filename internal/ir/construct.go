package ir

import "slicehide/internal/lang/token"

// Constructors used by transformation passes (notably the splitting
// transformation in internal/core) to synthesize statements with IDs
// allocated from a target function.

// NewAssign creates an assignment owned by f.
func (f *Func) NewAssign(pos token.Pos, lhs Target, rhs Expr) *AssignStmt {
	return &AssignStmt{stmtBase: f.NewStmt(pos), Lhs: lhs, Rhs: rhs}
}

// NewIf creates an if statement owned by f.
func (f *Func) NewIf(pos token.Pos, cond Expr, then, els []Stmt) *IfStmt {
	return &IfStmt{stmtBase: f.NewStmt(pos), Cond: cond, Then: then, Else: els}
}

// NewWhile creates a while statement owned by f.
func (f *Func) NewWhile(pos token.Pos, cond Expr, body, post []Stmt) *WhileStmt {
	return &WhileStmt{stmtBase: f.NewStmt(pos), Cond: cond, Body: body, Post: post}
}

// NewReturn creates a return statement owned by f.
func (f *Func) NewReturn(pos token.Pos, value Expr) *ReturnStmt {
	return &ReturnStmt{stmtBase: f.NewStmt(pos), Value: value}
}

// NewBreak creates a break statement owned by f.
func (f *Func) NewBreak(pos token.Pos) *BreakStmt {
	return &BreakStmt{stmtBase: f.NewStmt(pos)}
}

// NewContinue creates a continue statement owned by f.
func (f *Func) NewContinue(pos token.Pos) *ContinueStmt {
	return &ContinueStmt{stmtBase: f.NewStmt(pos)}
}

// NewPrint creates a print statement owned by f.
func (f *Func) NewPrint(pos token.Pos, args []Expr) *PrintStmt {
	return &PrintStmt{stmtBase: f.NewStmt(pos), Args: args}
}

// NewCallStmt creates a call statement owned by f.
func (f *Func) NewCallStmt(pos token.Pos, call *CallExpr) *CallStmt {
	return &CallStmt{stmtBase: f.NewStmt(pos), Call: call}
}

// NewHCallStmt creates a hidden-component call statement owned by f.
func (f *Func) NewHCallStmt(pos token.Pos, call *HCallExpr) *HCallStmt {
	return &HCallStmt{stmtBase: f.NewStmt(pos), Call: call}
}
