package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slicehide/internal/hrt"
	"slicehide/internal/obs"
	"slicehide/internal/wal"
)

// Config describes one replica's view of the fleet.
type Config struct {
	// Self is this replica's serving address; it must appear in Peers
	// unless JoinSeed is set (a joiner boots as a fleet of one and asks
	// the seed to admit it).
	Self string
	// Peers is the initial fleet membership. The live membership is the
	// epoch-versioned table gossiped over the liveness probes; Peers only
	// seeds epoch 1 (a newer table persisted in MembershipPath wins at
	// boot).
	Peers []string
	// Replicate enables WAL streaming to peers and semi-synchronous commit
	// gating. It requires the server to have a durability layer.
	Replicate bool
	// JoinSeed, when set, makes Start ask the fleet member at this address
	// to admit Self; the adopted membership then propagates everywhere via
	// gossip. The replica reports not-ready until it has joined and caught
	// up.
	JoinSeed string
	// MembershipPath, when set, persists the membership table (epoch and
	// member list) so a restarted replica rejoins the fleet it last knew,
	// not the one its flags describe.
	MembershipPath string
	// SnapChunk bounds a snapshot-transfer chunk (default 256 KiB). Small
	// chunks keep any single write short so a transfer never stalls live
	// streams behind a multi-megabyte frame.
	SnapChunk int
	// ProbeInterval is how often peer liveness is re-checked (default
	// 150ms). Detection latency bounds failover latency. Probes are OpPing
	// exchanges that double as membership gossip.
	ProbeInterval time.Duration
	// DialTimeout bounds liveness probes and pump dials (default 500ms).
	DialTimeout time.Duration
	// CommitTimeout bounds how long a response may wait for follower
	// acknowledgement before degrading to asynchronous replication
	// (default 5s). A wedged follower slows the fleet; it must not stop it.
	CommitTimeout time.Duration
	// Tracer, when set, receives fleet events (peer death, promotion,
	// pump reconnects, membership changes, snapshot transfers).
	Tracer *obs.Tracer
}

// defaultSnapChunk bounds snapshot-transfer chunks at 256 KiB.
const defaultSnapChunk = 256 << 10

func (c *Config) fill() error {
	if c.Self == "" {
		return errors.New("cluster: Self address is required")
	}
	found := false
	seen := make(map[string]bool, len(c.Peers))
	for _, p := range c.Peers {
		if p == "" {
			return errors.New("cluster: empty peer address")
		}
		if seen[p] {
			return fmt.Errorf("cluster: duplicate peer address %s", p)
		}
		seen[p] = true
		if p == c.Self {
			found = true
		}
	}
	if !found {
		if c.JoinSeed == "" {
			return fmt.Errorf("cluster: Self %s is not in the peer list", c.Self)
		}
		c.Peers = append(append([]string(nil), c.Peers...), c.Self)
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 150 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 5 * time.Second
	}
	if c.SnapChunk <= 0 {
		c.SnapChunk = defaultSnapChunk
	}
	return nil
}

// Group runs one replica's fleet machinery: the liveness prober (which
// doubles as the membership gossip), the session router, and — when
// replication is on — one streaming pump per peer plus the semi-
// synchronous commit gate. It installs itself into the server's
// Router/ReplHandler/ReplResume/Gossip hooks at construction and starts
// its background loops on Start.
type Group struct {
	cfg     Config
	ts      *hrt.TCPServer
	tracker *wal.OffsetTracker

	mu        sync.Mutex
	members   Membership
	leaving   bool // Self asked to leave; do not auto-rejoin
	closed    bool // Close started; no new pumps may spawn
	alive     map[string]bool
	fails     map[string]int // consecutive failed probes per peer
	deadSince map[string]time.Time
	promoted  map[string]bool          // failover_ns recorded for this death
	pumps     map[string]chan struct{} // per-peer pump stop channels

	// changeMu serializes local membership mutations (Join/Leave), so two
	// concurrent admin calls cannot race to the same epoch and drop one
	// change on the tiebreak.
	changeMu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	pumpMu    sync.Mutex
	pumpConns map[string]net.Conn

	// Inbound-stream bookkeeping (recvMu): per-sender applied positions
	// (the OpRepl handshake's resume source), per-sender catch-up targets
	// (from ReplFrameTarget; /readyz holds until met), the single active
	// snapshot-transfer stage, and which senders hold an open stream.
	recvMu     sync.Mutex
	recvPos    map[string]wal.Position
	targets    map[string]wal.Position
	stage      *snapStage
	recvActive map[string]int
	// recvAnnounced counts, per sender, inbound streams that have announced
	// the sender's journal position (the ReplFrameTarget after the
	// handshake). Readiness requires one from every live peer: a replica
	// that has not heard where each peer's journal stands cannot know it
	// is caught up — a restarted joiner with an empty journal would
	// otherwise report ready (zero lag, zero targets) purely out of
	// ignorance, and serve stale state until the first sender reconnected.
	recvAnnounced map[string]int

	redirects  atomic.Int64
	replBytes  atomic.Int64
	failoverNS atomic.Int64
	syncWaits  atomic.Int64
	syncStalls atomic.Int64
	// replReceived/replApplied tally the incoming replication stream:
	// records read off the wire vs. records applied to local state. Their
	// difference is this follower's own apply lag, the receiving-side
	// counterpart of the sender's repl_lag_records.
	replReceived atomic.Int64
	replApplied  atomic.Int64
	// Snapshot catch-up transfer accounting, both directions.
	snapXferBytes atomic.Int64
	snapXferNS    atomic.Int64
	snapResumes   atomic.Int64
}

// New builds the group and wires it into ts: the Router hook (owner
// redirects), the ReplHandler/ReplResume hooks (inbound streams and their
// resume positions), the Gossip hook (membership exchange over liveness
// pings), and — with Replicate — the durability layer's commit gate. Call
// Start once the server is listening.
func New(cfg Config, ts *hrt.TCPServer) (*Group, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ts == nil {
		return nil, errors.New("cluster: nil server")
	}
	if cfg.Replicate && ts.Persist == nil {
		return nil, errors.New("cluster: replication requires a durable server (-wal)")
	}
	members := NewMembership(cfg.Peers)
	if cfg.MembershipPath != "" {
		if persisted, ok := LoadMembership(cfg.MembershipPath); ok && persisted.Supersedes(members) {
			members = persisted
		}
	}
	g := &Group{
		cfg:           cfg,
		ts:            ts,
		tracker:       wal.NewOffsetTracker(),
		members:       members,
		alive:         make(map[string]bool, len(members.Members)),
		fails:         make(map[string]int, len(members.Members)),
		deadSince:     make(map[string]time.Time),
		promoted:      make(map[string]bool),
		pumps:         make(map[string]chan struct{}),
		stop:          make(chan struct{}),
		pumpConns:     make(map[string]net.Conn),
		recvPos:       make(map[string]wal.Position),
		targets:       make(map[string]wal.Position),
		recvActive:    make(map[string]int),
		recvAnnounced: make(map[string]int),
	}
	// Boot optimistic: a fleet starting together must not redirect-flail
	// while the first probe round is still in flight.
	for _, p := range members.Members {
		g.alive[p] = true
	}
	ts.Router = g
	ts.ReplHandler = g.handleRepl
	ts.ReplResume = g.replResume
	ts.Gossip = g
	if cfg.Replicate {
		ts.Persist.SetCommitter(g)
	}
	return g, nil
}

// Start launches the prober, the join loop (with JoinSeed), and — with
// replication on — one pump per current member.
func (g *Group) Start() {
	g.wg.Add(1)
	go g.probeLoop()
	g.syncPumps()
	if g.cfg.JoinSeed != "" {
		g.wg.Add(1)
		go g.joinLoop()
	}
}

// Close stops the background loops and tears down pump connections,
// releasing any requests blocked in the commit gate (each dropped pump
// wakes the tracker's waiters). The server's hooks stay installed — a
// closed group routes everything locally and refuses nothing — because
// swapping them mid-serve would race the accept loop.
func (g *Group) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	g.pumpMu.Lock()
	for _, c := range g.pumpConns {
		c.Close()
	}
	g.pumpMu.Unlock()
	g.wg.Wait()
	if g.cfg.Replicate {
		g.ts.Persist.SetCommitter(nil)
	}
}

// ---------------------------------------------------------------------------
// Membership

// Membership returns a copy of the current member table.
func (g *Group) Membership() Membership {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members.Clone()
}

// Epoch returns the current membership epoch.
func (g *Group) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.members.Epoch
}

// adopt installs m if it supersedes the current table, persists it,
// reconciles the pump set, and reports whether it was installed.
func (g *Group) adopt(m Membership, source string) bool {
	g.mu.Lock()
	if !m.Supersedes(g.members) {
		g.mu.Unlock()
		return false
	}
	g.members = m.Clone()
	for _, p := range m.Members {
		if _, ok := g.alive[p]; !ok {
			// New members start optimistically alive, like at boot.
			g.alive[p] = true
		}
	}
	// Forget liveness state for ex-members so gauges and the router stop
	// seeing them.
	for p := range g.alive {
		if !m.Has(p) {
			delete(g.alive, p)
			delete(g.fails, p)
			delete(g.deadSince, p)
			delete(g.promoted, p)
		}
	}
	excluded := !m.Has(g.cfg.Self) && !g.leaving
	g.mu.Unlock()
	g.recvMu.Lock()
	for sender := range g.targets {
		if !m.Has(sender) {
			delete(g.targets, sender)
		}
	}
	for sender := range g.recvAnnounced {
		if !m.Has(sender) {
			delete(g.recvAnnounced, sender)
		}
	}
	if g.stage != nil && !m.Has(g.stage.sender) {
		g.stage = nil
	}
	g.recvMu.Unlock()
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_membership",
		obs.Uint("epoch", m.Epoch), obs.Str("members", m.Encode()), obs.Str("source", source))
	if g.cfg.MembershipPath != "" {
		if err := m.Save(g.cfg.MembershipPath); err != nil {
			g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_membership_persist_error", obs.Err(err))
		}
	}
	if excluded {
		// Evicted without asking to leave (an operator removed a replica
		// they believed dead, or we lost a concurrent-join tiebreak). The
		// prober re-requests admission; until then we are not ready.
		g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_evicted", obs.Uint("epoch", m.Epoch))
	}
	g.syncPumps()
	return true
}

// Join adds addr to the membership (idempotent) and returns the resulting
// table. The bump propagates to the rest of the fleet via gossip.
func (g *Group) Join(addr string) (Membership, error) {
	g.changeMu.Lock()
	defer g.changeMu.Unlock()
	cur := g.Membership()
	next, changed := cur.WithJoined(addr)
	if !changed {
		if cur.Has(addr) {
			return cur, nil
		}
		return cur, fmt.Errorf("cluster: invalid member address %q", addr)
	}
	g.adopt(next, "join")
	return g.Membership(), nil
}

// Leave removes addr from the membership (idempotent) and returns the
// resulting table. Leaving Self marks this replica as draining: it will
// not auto-rejoin, and its router redirects sessions to the survivors.
func (g *Group) Leave(addr string) (Membership, error) {
	g.changeMu.Lock()
	defer g.changeMu.Unlock()
	if addr == g.cfg.Self {
		g.mu.Lock()
		g.leaving = true
		g.mu.Unlock()
	}
	cur := g.Membership()
	next, changed := cur.WithLeft(addr)
	if !changed {
		return cur, nil
	}
	g.adopt(next, "leave")
	return g.Membership(), nil
}

// GossipSync implements hrt.GossipHandler: merge the prober's table,
// answer with ours.
func (g *Group) GossipSync(from, remote string) string {
	if remote != "" {
		if m, err := ParseMembership(remote); err == nil {
			g.adopt(m, "gossip:"+from)
		}
	}
	return g.Membership().Encode()
}

// GossipJoin implements hrt.GossipHandler for the join verb.
func (g *Group) GossipJoin(addr string) (string, error) {
	if addr == "" {
		return "", errors.New("cluster: join requires an address")
	}
	m, err := g.Join(addr)
	return m.Encode(), err
}

// GossipLeave implements hrt.GossipHandler for the leave verb.
func (g *Group) GossipLeave(addr string) (string, error) {
	if addr == "" {
		return "", errors.New("cluster: leave requires an address")
	}
	m, err := g.Leave(addr)
	return m.Encode(), err
}

// syncPumps reconciles the running pump set with the current membership:
// a pump per member other than Self (replication on and Self a member),
// none otherwise. Removed members' pumps are stopped, their connections
// severed, and their tracker entries dropped so the commit gate never
// waits on an ex-member.
func (g *Group) syncPumps() {
	if !g.cfg.Replicate {
		return
	}
	var started, stopped []string
	g.mu.Lock()
	want := make(map[string]bool)
	if g.members.Has(g.cfg.Self) && !g.closed {
		for _, p := range g.members.Others(g.cfg.Self) {
			want[p] = true
		}
	}
	for peer, stopCh := range g.pumps {
		if !want[peer] {
			close(stopCh)
			delete(g.pumps, peer)
			stopped = append(stopped, peer)
		}
	}
	for peer := range want {
		if _, ok := g.pumps[peer]; !ok {
			stopCh := make(chan struct{})
			g.pumps[peer] = stopCh
			g.wg.Add(1)
			go g.pumpLoop(peer, stopCh)
			started = append(started, peer)
		}
	}
	g.mu.Unlock()
	for _, peer := range stopped {
		g.releaseDeadPeer(peer) // drop tracker entry + sever the pump conn
		g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_pump_stop", obs.Str("peer", peer))
	}
	for _, peer := range started {
		g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_pump_start", obs.Str("peer", peer))
	}
}

// joinLoop asks the seed to admit Self until the fleet's table says so.
func (g *Group) joinLoop() {
	defer g.wg.Done()
	backoff := pumpBackoffMin
	for {
		g.mu.Lock()
		joined := g.members.Has(g.cfg.Self) && (g.members.Epoch > 1 || len(g.members.Members) > 1)
		g.mu.Unlock()
		if joined {
			return
		}
		reply, err := hrt.GossipExchange(g.cfg.JoinSeed, g.cfg.Self, hrt.PingJoin, g.cfg.Self, g.cfg.DialTimeout)
		if err == nil {
			if m, perr := ParseMembership(reply); perr == nil {
				g.adopt(m, "join-seed")
			} else {
				err = perr
			}
		}
		if err != nil {
			g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_join_retry",
				obs.Str("seed", g.cfg.JoinSeed), obs.Err(err))
		}
		if !g.sleepCh(backoff, nil) {
			return
		}
		backoff = min(backoff*2, pumpBackoffMax)
	}
}

// ---------------------------------------------------------------------------
// Liveness

// probeFailThreshold is how many consecutive probe failures it takes to
// declare a live peer dead. Detection latency (and so failover latency)
// is bounded by probeFailThreshold × ProbeInterval.
const probeFailThreshold = 3

func (g *Group) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		g.probeOnce()
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
	}
}

func (g *Group) probeOnce() {
	members := g.Membership()
	enc := members.Encode()
	for _, peer := range members.Others(g.cfg.Self) {
		reply, err := hrt.GossipExchange(peer, g.cfg.Self, hrt.PingSync, enc, g.cfg.DialTimeout)
		up := err == nil
		if up && reply != "" {
			if m, perr := ParseMembership(reply); perr == nil {
				g.adopt(m, "probe:"+peer)
			}
		}
		g.mu.Lock()
		if !g.members.Has(peer) {
			// The peer left the fleet while we probed it.
			g.mu.Unlock()
			continue
		}
		was := g.alive[peer]
		died := false
		if up {
			g.fails[peer] = 0
			g.alive[peer] = true
			if !was {
				delete(g.deadSince, peer)
				g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_peer_up", obs.Str("peer", peer))
			}
		} else {
			// Flap damping: a peer is declared dead only after
			// probeFailThreshold consecutive failed probes. One refused dial
			// is routinely a fleet member still binding its listener at boot;
			// clobbering boot optimism on it would zero the live-peer count,
			// letting readiness and the commit gate pass with no replication
			// streams established.
			g.fails[peer]++
			if was && g.fails[peer] >= probeFailThreshold {
				g.alive[peer] = false
				g.deadSince[peer] = time.Now()
				g.promoted[peer] = false
				died = true
				g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_peer_down", obs.Str("peer", peer))
			}
		}
		g.mu.Unlock()
		if died {
			g.releaseDeadPeer(peer)
		}
	}
	g.rejoinIfEvicted()
}

// rejoinIfEvicted re-requests admission when a table excluding Self was
// adopted without Self asking to leave — the flip side of letting any
// member evict an address it believes dead: a live evictee simply joins
// back, so only genuinely dead replicas stay removed.
func (g *Group) rejoinIfEvicted() {
	g.mu.Lock()
	excluded := !g.members.Has(g.cfg.Self) && !g.leaving
	var via string
	if excluded {
		for _, p := range g.members.Members {
			if g.alive[p] {
				via = p
				break
			}
		}
	}
	g.mu.Unlock()
	if !excluded || via == "" {
		return
	}
	if reply, err := hrt.GossipExchange(via, g.cfg.Self, hrt.PingJoin, g.cfg.Self, g.cfg.DialTimeout); err == nil {
		if m, perr := ParseMembership(reply); perr == nil {
			g.adopt(m, "rejoin")
		}
	}
}

// releaseDeadPeer severs a prober-declared-dead peer from the commit path
// immediately. Its pump connection may look healthy — a partitioned or
// wedged follower keeps the socket open while acknowledging nothing — so
// without this, every response gated on that follower waits out the full
// ack-degrade timeout even though the prober already knows the peer is
// gone. Dropping the peer from the offset tracker wakes those waiters now
// (with the last connected follower dead, the gate releases instead of
// timing out), and closing the pump connection moves the pump into its
// reconnect backoff, whose normal disconnect path would otherwise be the
// only place the tracker entry dies.
func (g *Group) releaseDeadPeer(peer string) {
	g.tracker.Drop(peer)
	g.pumpMu.Lock()
	if c, ok := g.pumpConns[peer]; ok {
		c.Close()
	}
	g.pumpMu.Unlock()
}

// livePeers returns the members currently believed alive (Self always is,
// while a member).
func (g *Group) livePeers() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.members.Members))
	for _, p := range g.members.Members {
		if p == g.cfg.Self || g.alive[p] {
			out = append(out, p)
		}
	}
	return out
}

// AlivePeers reports how many fleet members are currently believed alive.
func (g *Group) AlivePeers() int { return len(g.livePeers()) }

// ---------------------------------------------------------------------------
// Routing

// Route implements hrt.Router. A session whose rendezvous owner over the
// live member set is this replica is served here; when the owner is
// another live replica the client is redirected — with replication every
// replica holds the session's state, so the redirect costs nothing but a
// redial, and keeping a single writer per session keeps the fleet's
// journals append-consistent. Without replication a session's state exists
// only where it executed, so known sessions are always served locally and
// only unknown ones redirect. Membership epochs re-rank placement: a
// session whose owner moved is handed off by the same typed redirect a
// failover uses, and HRW hashing guarantees survivor-owned sessions never
// move when the fleet grows or shrinks by one.
func (g *Group) Route(session uint64, known bool) (string, bool) {
	select {
	case <-g.stop:
		return "", false
	default:
	}
	owner := Owner(session, g.livePeers())
	if owner == "" || owner == g.cfg.Self {
		g.observePromotion(session)
		return "", false
	}
	if known && !g.cfg.Replicate {
		return "", false
	}
	g.redirects.Add(1)
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_redirect",
		obs.Uint("session", session), obs.Str("owner", owner))
	return owner, true
}

// observePromotion records failover latency: the first time this replica
// serves a session whose full-membership owner is a currently dead peer,
// the gap since that peer's death is the fleet's observed failover time —
// detection plus re-resolution, the window the session's client was
// stalled.
func (g *Group) observePromotion(session uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	staticOwner := Owner(session, g.members.Members)
	if staticOwner == g.cfg.Self {
		return
	}
	since, dead := g.deadSince[staticOwner]
	if !dead || g.promoted[staticOwner] {
		return
	}
	g.promoted[staticOwner] = true
	ns := time.Since(since).Nanoseconds()
	g.failoverNS.Store(ns)
	g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_promotion",
		obs.Uint("session", session), obs.Str("dead_peer", staticOwner),
		obs.Dur("failover", time.Duration(ns)))
}

// ---------------------------------------------------------------------------
// Semi-synchronous commit gate

// WaitCommitted implements hrt.ReplCommitter: block until every connected
// follower has acknowledged the journal position, or the commit timeout
// passes (degrading that response to asynchronous replication). With no
// followers connected — a fleet of one, or all peers down — it returns
// immediately: the fleet cannot demand acknowledgement from nobody. A
// joining replica mid-catch-up is not yet registered in the tracker (the
// pump registers it only once its snapshot transfer completes), so a join
// never stalls the fleet's commit path.
func (g *Group) WaitCommitted(gen uint64, records int64) {
	g.syncWaits.Add(1)
	_, ok := g.tracker.WaitForTimeout(wal.Position{Gen: gen, Records: records}, g.cfg.CommitTimeout)
	if !ok {
		g.syncStalls.Add(1)
		g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_commit_timeout",
			obs.Uint("gen", gen), obs.Int("records", records))
	}
}

// Lag reports how many journal records the slowest connected follower is
// behind this replica (0 with no followers connected). Positions across a
// generation boundary cannot be subtracted exactly; "current records + 1"
// is the conservative floor.
func (g *Group) Lag() int64 {
	if !g.cfg.Replicate {
		return 0
	}
	gen, records := g.ts.Persist.CurrentPosition()
	min, n := g.tracker.Min()
	if n == 0 {
		return 0
	}
	if min.Gen == gen {
		d := records - min.Records
		if d < 0 {
			d = 0
		}
		return d
	}
	if min.Gen > gen {
		return 0
	}
	return records + 1
}

// Ready reports whether this replica should receive traffic: a fleet
// member (joined, not evicted, not leaving), no snapshot transfer or
// record catch-up in progress on the inbound side, a replication stream
// established to every live peer, and outbound lag zero. The stream
// requirement matters at boot — the commit gate only holds responses for
// *connected* followers, so serving before the pumps are up would hand
// out acknowledgements nothing replicates. The daemon layer additionally
// gates on recovery having finished before the group even exists.
func (g *Group) Ready() (bool, string) {
	if !g.cfg.Replicate {
		return true, ""
	}
	g.mu.Lock()
	isMember := g.members.Has(g.cfg.Self)
	leaving := g.leaving
	joining := g.cfg.JoinSeed != "" && g.members.Epoch == 1 && len(g.members.Members) == 1
	g.mu.Unlock()
	if leaving {
		return false, "leaving the fleet"
	}
	if !isMember {
		return false, "not a fleet member (evicted; rejoin pending)"
	}
	if joining {
		return false, fmt.Sprintf("joining the fleet via %s", g.cfg.JoinSeed)
	}
	if reason := g.catchingUp(); reason != "" {
		return false, reason
	}
	remote := 0
	for _, p := range g.livePeers() {
		if p == g.cfg.Self {
			continue
		}
		remote++
		// The inbound mirror of the stream-count check below: every live
		// peer must hold an open stream to us that has announced its
		// journal position. Until then we cannot distinguish "caught up"
		// from "have not yet been told how far behind we are" — the
		// restarted-joiner trap.
		g.recvMu.Lock()
		announced := g.recvAnnounced[p]
		g.recvMu.Unlock()
		if announced == 0 {
			return false, fmt.Sprintf("awaiting inbound replication stream from %s", p)
		}
	}
	if _, n := g.tracker.Min(); n < remote {
		return false, fmt.Sprintf("replication streams connecting (%d/%d)", n, remote)
	}
	if lag := g.Lag(); lag > 0 {
		return false, fmt.Sprintf("replication catching up: %d records behind", lag)
	}
	return true, ""
}

// catchingUp reports a non-empty reason while the inbound side is behind:
// a snapshot transfer is staged, or a sender's announced stream target has
// not been reached yet. Met targets are cleared as a side effect.
func (g *Group) catchingUp() string {
	g.recvMu.Lock()
	defer g.recvMu.Unlock()
	if st := g.stage; st != nil {
		return fmt.Sprintf("snapshot transfer from %s in progress (%d bytes staged)", st.sender, len(st.buf))
	}
	for sender, tgt := range g.targets {
		if pos := g.recvPos[sender]; pos.Before(tgt) {
			return fmt.Sprintf("catching up on %s: applied (%d,%d), stream target (%d,%d)",
				sender, pos.Gen, pos.Records, tgt.Gen, tgt.Records)
		}
		delete(g.targets, sender)
	}
	return ""
}

// FailoverNS reports the last observed failover latency (death of a peer
// to first promoted serve of one of its sessions), 0 if none happened.
func (g *Group) FailoverNS() int64 { return g.failoverNS.Load() }

// Redirects reports how many requests were redirected to their owner.
func (g *Group) Redirects() int64 { return g.redirects.Load() }

// SnapXferBytes reports the snapshot-transfer bytes moved (both
// directions), 0 when no transfer ran.
func (g *Group) SnapXferBytes() int64 { return g.snapXferBytes.Load() }

// SnapXferNS reports the cumulative wall-clock time spent in snapshot
// transfers.
func (g *Group) SnapXferNS() int64 { return g.snapXferNS.Load() }

// RegisterMetrics exports the fleet gauges.
func (g *Group) RegisterMetrics(reg *obs.Registry) {
	reg.Gauge("repl_lag_records", g.Lag)
	reg.Gauge("repl_apply_lag_records", func() int64 { return g.replReceived.Load() - g.replApplied.Load() })
	reg.Gauge("repl_bytes", g.replBytes.Load)
	reg.Gauge("owner_redirects", g.redirects.Load)
	reg.Gauge("failover_ns", g.failoverNS.Load)
	reg.Gauge("repl_sync_waits", g.syncWaits.Load)
	reg.Gauge("repl_sync_stalls", g.syncStalls.Load)
	reg.Gauge("cluster_peers_alive", func() int64 { return int64(g.AlivePeers()) })
	reg.Gauge("cluster_membership_epoch", func() int64 { return int64(g.Epoch()) })
	reg.Gauge("snap_xfer_bytes", g.snapXferBytes.Load)
	reg.Gauge("snap_xfer_ns", g.snapXferNS.Load)
	reg.Gauge("snap_xfer_resumes", g.snapResumes.Load)
}

// Info describes the fleet for the daemon banner and /healthz.
func (g *Group) Info() map[string]string {
	m := g.Membership()
	mode := "route-only"
	if g.cfg.Replicate {
		mode = "replicate"
	}
	return map[string]string{
		"cluster_self":  g.cfg.Self,
		"cluster_peers": fmt.Sprintf("%v", m.Members),
		"cluster_epoch": fmt.Sprintf("%d", m.Epoch),
		"cluster_mode":  mode,
	}
}
