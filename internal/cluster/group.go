package cluster

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slicehide/internal/hrt"
	"slicehide/internal/obs"
	"slicehide/internal/wal"
)

// Config describes one replica's view of the fleet.
type Config struct {
	// Self is this replica's serving address; it must appear in Peers.
	Self string
	// Peers is the full fleet membership (including Self), identical on
	// every replica — rendezvous placement only agrees across the fleet
	// when the member list does.
	Peers []string
	// Replicate enables WAL streaming to peers and semi-synchronous commit
	// gating. It requires the server to have a durability layer.
	Replicate bool
	// ProbeInterval is how often peer liveness is re-checked (default
	// 150ms). Detection latency bounds failover latency.
	ProbeInterval time.Duration
	// DialTimeout bounds liveness probes and pump dials (default 500ms).
	DialTimeout time.Duration
	// CommitTimeout bounds how long a response may wait for follower
	// acknowledgement before degrading to asynchronous replication
	// (default 5s). A wedged follower slows the fleet; it must not stop it.
	CommitTimeout time.Duration
	// Tracer, when set, receives fleet events (peer death, promotion,
	// pump reconnects).
	Tracer *obs.Tracer
}

func (c *Config) fill() error {
	if c.Self == "" {
		return errors.New("cluster: Self address is required")
	}
	found := false
	seen := make(map[string]bool, len(c.Peers))
	for _, p := range c.Peers {
		if p == "" {
			return errors.New("cluster: empty peer address")
		}
		if seen[p] {
			return fmt.Errorf("cluster: duplicate peer address %s", p)
		}
		seen[p] = true
		if p == c.Self {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("cluster: Self %s is not in the peer list", c.Self)
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 150 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.CommitTimeout <= 0 {
		c.CommitTimeout = 5 * time.Second
	}
	return nil
}

// Group runs one replica's fleet machinery: the liveness prober, the
// session router, and — when replication is on — one streaming pump per
// peer plus the semi-synchronous commit gate. It installs itself into the
// server's Router/ReplHandler hooks at construction and starts its
// background loops on Start.
type Group struct {
	cfg     Config
	ts      *hrt.TCPServer
	tracker *wal.OffsetTracker

	mu        sync.Mutex
	alive     map[string]bool
	fails     map[string]int // consecutive failed probes per peer
	deadSince map[string]time.Time
	promoted  map[string]bool // failover_ns recorded for this death

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	pumpMu    sync.Mutex
	pumpConns map[string]net.Conn

	redirects  atomic.Int64
	replBytes  atomic.Int64
	failoverNS atomic.Int64
	syncWaits  atomic.Int64
	syncStalls atomic.Int64
	// replReceived/replApplied tally the incoming replication stream:
	// records read off the wire vs. records applied to local state. Their
	// difference is this follower's own apply lag, the receiving-side
	// counterpart of the sender's repl_lag_records.
	replReceived atomic.Int64
	replApplied  atomic.Int64
}

// New builds the group and wires it into ts: the Router hook (owner
// redirects), the ReplHandler hook (inbound streams), and — with
// Replicate — the durability layer's commit gate. Call Start once the
// server is listening.
func New(cfg Config, ts *hrt.TCPServer) (*Group, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ts == nil {
		return nil, errors.New("cluster: nil server")
	}
	if cfg.Replicate && ts.Persist == nil {
		return nil, errors.New("cluster: replication requires a durable server (-wal)")
	}
	g := &Group{
		cfg:       cfg,
		ts:        ts,
		tracker:   wal.NewOffsetTracker(),
		alive:     make(map[string]bool, len(cfg.Peers)),
		fails:     make(map[string]int, len(cfg.Peers)),
		deadSince: make(map[string]time.Time),
		promoted:  make(map[string]bool),
		stop:      make(chan struct{}),
		pumpConns: make(map[string]net.Conn),
	}
	// Boot optimistic: a fleet starting together must not redirect-flail
	// while the first probe round is still in flight.
	for _, p := range cfg.Peers {
		g.alive[p] = true
	}
	ts.Router = g
	ts.ReplHandler = g.handleRepl
	if cfg.Replicate {
		ts.Persist.SetCommitter(g)
	}
	return g, nil
}

// Start launches the prober and, with replication on, one pump per peer.
func (g *Group) Start() {
	g.wg.Add(1)
	go g.probeLoop()
	if g.cfg.Replicate {
		for _, peer := range g.cfg.Peers {
			if peer == g.cfg.Self {
				continue
			}
			g.wg.Add(1)
			go g.pumpLoop(peer)
		}
	}
}

// Close stops the background loops and tears down pump connections,
// releasing any requests blocked in the commit gate (each dropped pump
// wakes the tracker's waiters). The server's hooks stay installed — a
// closed group routes everything locally and refuses nothing — because
// swapping them mid-serve would race the accept loop.
func (g *Group) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.pumpMu.Lock()
	for _, c := range g.pumpConns {
		c.Close()
	}
	g.pumpMu.Unlock()
	g.wg.Wait()
	if g.cfg.Replicate {
		g.ts.Persist.SetCommitter(nil)
	}
}

// ---------------------------------------------------------------------------
// Liveness

// probeFailThreshold is how many consecutive probe failures it takes to
// declare a live peer dead. Detection latency (and so failover latency)
// is bounded by probeFailThreshold × ProbeInterval.
const probeFailThreshold = 3

func (g *Group) probeLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		g.probeOnce()
		select {
		case <-g.stop:
			return
		case <-t.C:
		}
	}
}

func (g *Group) probeOnce() {
	for _, peer := range g.cfg.Peers {
		if peer == g.cfg.Self {
			continue
		}
		conn, err := net.DialTimeout("tcp", peer, g.cfg.DialTimeout)
		up := err == nil
		if conn != nil {
			conn.Close()
		}
		g.mu.Lock()
		was := g.alive[peer]
		died := false
		if up {
			g.fails[peer] = 0
			g.alive[peer] = true
			if !was {
				delete(g.deadSince, peer)
				g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_peer_up", obs.Str("peer", peer))
			}
		} else {
			// Flap damping: a peer is declared dead only after
			// probeFailThreshold consecutive failed probes. One refused dial
			// is routinely a fleet member still binding its listener at boot;
			// clobbering boot optimism on it would zero the live-peer count,
			// letting readiness and the commit gate pass with no replication
			// streams established.
			g.fails[peer]++
			if was && g.fails[peer] >= probeFailThreshold {
				g.alive[peer] = false
				g.deadSince[peer] = time.Now()
				g.promoted[peer] = false
				died = true
				g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_peer_down", obs.Str("peer", peer))
			}
		}
		g.mu.Unlock()
		if died {
			g.releaseDeadPeer(peer)
		}
	}
}

// releaseDeadPeer severs a prober-declared-dead peer from the commit path
// immediately. Its pump connection may look healthy — a partitioned or
// wedged follower keeps the socket open while acknowledging nothing — so
// without this, every response gated on that follower waits out the full
// ack-degrade timeout even though the prober already knows the peer is
// gone. Dropping the peer from the offset tracker wakes those waiters now
// (with the last connected follower dead, the gate releases instead of
// timing out), and closing the pump connection moves the pump into its
// reconnect backoff, whose normal disconnect path would otherwise be the
// only place the tracker entry dies.
func (g *Group) releaseDeadPeer(peer string) {
	g.tracker.Drop(peer)
	g.pumpMu.Lock()
	if c, ok := g.pumpConns[peer]; ok {
		c.Close()
	}
	g.pumpMu.Unlock()
}

// livePeers returns the members currently believed alive (Self always is).
func (g *Group) livePeers() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.cfg.Peers))
	for _, p := range g.cfg.Peers {
		if p == g.cfg.Self || g.alive[p] {
			out = append(out, p)
		}
	}
	return out
}

// AlivePeers reports how many fleet members are currently believed alive.
func (g *Group) AlivePeers() int { return len(g.livePeers()) }

// ---------------------------------------------------------------------------
// Routing

// Route implements hrt.Router. A session whose rendezvous owner over the
// live member set is this replica is served here; when the owner is
// another live replica the client is redirected — with replication every
// replica holds the session's state, so the redirect costs nothing but a
// redial, and keeping a single writer per session keeps the fleet's
// journals append-consistent. Without replication a session's state exists
// only where it executed, so known sessions are always served locally and
// only unknown ones redirect.
func (g *Group) Route(session uint64, known bool) (string, bool) {
	select {
	case <-g.stop:
		return "", false
	default:
	}
	owner := Owner(session, g.livePeers())
	if owner == "" || owner == g.cfg.Self {
		g.observePromotion(session)
		return "", false
	}
	if known && !g.cfg.Replicate {
		return "", false
	}
	g.redirects.Add(1)
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_redirect",
		obs.Uint("session", session), obs.Str("owner", owner))
	return owner, true
}

// observePromotion records failover latency: the first time this replica
// serves a session whose full-membership owner is a currently dead peer,
// the gap since that peer's death is the fleet's observed failover time —
// detection plus re-resolution, the window the session's client was
// stalled.
func (g *Group) observePromotion(session uint64) {
	staticOwner := Owner(session, g.cfg.Peers)
	if staticOwner == g.cfg.Self {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	since, dead := g.deadSince[staticOwner]
	if !dead || g.promoted[staticOwner] {
		return
	}
	g.promoted[staticOwner] = true
	ns := time.Since(since).Nanoseconds()
	g.failoverNS.Store(ns)
	g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_promotion",
		obs.Uint("session", session), obs.Str("dead_peer", staticOwner),
		obs.Dur("failover", time.Duration(ns)))
}

// ---------------------------------------------------------------------------
// Semi-synchronous commit gate

// WaitCommitted implements hrt.ReplCommitter: block until every connected
// follower has acknowledged the journal position, or the commit timeout
// passes (degrading that response to asynchronous replication). With no
// followers connected — a fleet of one, or all peers down — it returns
// immediately: the fleet cannot demand acknowledgement from nobody.
func (g *Group) WaitCommitted(gen uint64, records int64) {
	g.syncWaits.Add(1)
	_, ok := g.tracker.WaitForTimeout(wal.Position{Gen: gen, Records: records}, g.cfg.CommitTimeout)
	if !ok {
		g.syncStalls.Add(1)
		g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_commit_timeout",
			obs.Uint("gen", gen), obs.Int("records", records))
	}
}

// Lag reports how many journal records the slowest connected follower is
// behind this replica (0 with no followers connected). Positions across a
// generation boundary cannot be subtracted exactly; "current records + 1"
// is the conservative floor.
func (g *Group) Lag() int64 {
	if !g.cfg.Replicate {
		return 0
	}
	gen, records := g.ts.Persist.CurrentPosition()
	min, n := g.tracker.Min()
	if n == 0 {
		return 0
	}
	if min.Gen == gen {
		d := records - min.Records
		if d < 0 {
			d = 0
		}
		return d
	}
	if min.Gen > gen {
		return 0
	}
	return records + 1
}

// Ready reports whether this replica should receive traffic: a
// replication stream established to every live peer, and catch-up lag
// zero. The stream requirement matters at boot — the commit gate only
// holds responses for *connected* followers, so serving before the pumps
// are up would hand out acknowledgements nothing replicates. The daemon
// layer additionally gates on recovery having finished before the group
// even exists.
func (g *Group) Ready() (bool, string) {
	if !g.cfg.Replicate {
		return true, ""
	}
	remote := 0
	for _, p := range g.livePeers() {
		if p != g.cfg.Self {
			remote++
		}
	}
	if _, n := g.tracker.Min(); n < remote {
		return false, fmt.Sprintf("replication streams connecting (%d/%d)", n, remote)
	}
	if lag := g.Lag(); lag > 0 {
		return false, fmt.Sprintf("replication catching up: %d records behind", lag)
	}
	return true, ""
}

// FailoverNS reports the last observed failover latency (death of a peer
// to first promoted serve of one of its sessions), 0 if none happened.
func (g *Group) FailoverNS() int64 { return g.failoverNS.Load() }

// Redirects reports how many requests were redirected to their owner.
func (g *Group) Redirects() int64 { return g.redirects.Load() }

// RegisterMetrics exports the fleet gauges.
func (g *Group) RegisterMetrics(reg *obs.Registry) {
	reg.Gauge("repl_lag_records", g.Lag)
	reg.Gauge("repl_apply_lag_records", func() int64 { return g.replReceived.Load() - g.replApplied.Load() })
	reg.Gauge("repl_bytes", g.replBytes.Load)
	reg.Gauge("owner_redirects", g.redirects.Load)
	reg.Gauge("failover_ns", g.failoverNS.Load)
	reg.Gauge("repl_sync_waits", g.syncWaits.Load)
	reg.Gauge("repl_sync_stalls", g.syncStalls.Load)
	reg.Gauge("cluster_peers_alive", func() int64 { return int64(g.AlivePeers()) })
}

// Info describes the fleet for the daemon banner and /healthz.
func (g *Group) Info() map[string]string {
	rank := make([]string, len(g.cfg.Peers))
	copy(rank, g.cfg.Peers)
	sort.Strings(rank)
	mode := "route-only"
	if g.cfg.Replicate {
		mode = "replicate"
	}
	return map[string]string{
		"cluster_self":  g.cfg.Self,
		"cluster_peers": fmt.Sprintf("%v", rank),
		"cluster_mode":  mode,
	}
}
