package cluster

// Client-side connection sharing for the fleet. The per-session transports
// (hrt.DialReconnect with a SessionResolver) open one TCP connection per
// session; at fleet scale that multiplies connections by membership. A
// MuxPool instead keeps ONE multiplexed upstream per replica and routes
// every session's exchanges over the pooled connection of its rendezvous
// owner — M sessions across N replicas cost N sockets, not M.

import (
	"fmt"
	"sync"
	"time"

	"slicehide/internal/hrt"
	"slicehide/internal/obs"
)

// MuxPoolConfig configures the fleet's shared multiplexed upstreams.
type MuxPoolConfig struct {
	// Peers is the fleet membership (every replica's address).
	Peers []string
	// Timeout is the per-attempt I/O deadline on each upstream; default 5s.
	Timeout time.Duration
	// Policy bounds retries and backoff for every session's round trips.
	Policy hrt.RetryPolicy
	// Window is the requested per-session in-flight window on each
	// upstream; the server may grant less.
	Window int
	// Counters, when set, tallies connection-level traffic across the
	// pool (reconnects, writer coalescing).
	Counters *hrt.Counters
	// Tracer, when set, receives the pool's reconnect/redirect events.
	Tracer *obs.Tracer
}

// MuxPool shares one multiplexed connection per replica among every
// session of this process. Sessions attach through SessionTransport;
// upstreams are dialed lazily on first use and survive replica failures —
// a dead replica's transport re-dials on demand while its sessions fail
// over to the next member of their rendezvous rank.
type MuxPool struct {
	cfg MuxPoolConfig

	mu     sync.Mutex
	peers  []string
	conns  map[string]*hrt.MuxTransport
	closed bool
}

// NewMuxPool returns an empty pool over cfg.Peers; no connection is
// opened until a session's first exchange needs one.
func NewMuxPool(cfg MuxPoolConfig) *MuxPool {
	return &MuxPool{
		cfg:   cfg,
		peers: append([]string(nil), cfg.Peers...),
		conns: make(map[string]*hrt.MuxTransport),
	}
}

// Peers returns the pool's current fleet membership.
func (p *MuxPool) Peers() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.peers...)
}

// UpdatePeers replaces the pool's view of the fleet membership. Existing
// session transports re-rank on their next round trip — a session whose
// rendezvous owner is a newly joined replica migrates there (via the
// fleet's owner redirect if it lands elsewhere first), while upstreams to
// removed replicas linger until closed and are simply no longer routed to.
func (p *MuxPool) UpdatePeers(peers []string) {
	p.mu.Lock()
	p.peers = append([]string(nil), peers...)
	p.mu.Unlock()
}

// transport returns the pooled upstream to addr, dialing it on first use.
// Dial failures are not cached: the next caller re-dials, so a replica
// that was down at first contact is retried, not blacklisted.
func (p *MuxPool) transport(addr string) (*hrt.MuxTransport, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, hrt.Terminal(fmt.Errorf("cluster: mux pool closed"))
	}
	if mt := p.conns[addr]; mt != nil {
		p.mu.Unlock()
		return mt, nil
	}
	p.mu.Unlock()

	// Dial outside the pool lock: one slow replica must not block every
	// session homing elsewhere. A racing dial to the same replica loses
	// below and closes its extra connection.
	mt, err := hrt.DialMux(hrt.MuxConfig{
		Addr:     addr,
		Timeout:  p.cfg.Timeout,
		Policy:   p.cfg.Policy,
		Window:   p.cfg.Window,
		Counters: p.cfg.Counters,
		Tracer:   p.cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		mt.Close()
		return nil, hrt.Terminal(fmt.Errorf("cluster: mux pool closed"))
	}
	if cur := p.conns[addr]; cur != nil {
		mt.Close()
		return cur, nil
	}
	p.conns[addr] = mt
	return mt, nil
}

// Conns reports how many upstream connections the pool holds (for tests
// and gauges).
func (p *MuxPool) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close tears every pooled upstream down; subsequent exchanges fail
// terminally.
func (p *MuxPool) Close() error {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	var first error
	for _, mt := range conns {
		if err := mt.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SessionTransport returns the exactly-once transport for one session:
// requests are stamped and retried by the hrt.Retry layer, and each
// attempt lands on the pooled upstream of the session's current home —
// its rendezvous owner at first, then wherever the fleet's owner
// redirects point as membership changes. Zero session picks a random id.
func (p *MuxPool) SessionTransport(session uint64) hrt.Transport {
	if session == 0 {
		session = hrt.NewSessionID()
	}
	return &hrt.Retry{
		Inner:    &poolConn{p: p, session: session},
		Policy:   p.cfg.Policy,
		Session:  session,
		Counters: p.cfg.Counters,
		Tracer:   p.cfg.Tracer,
	}
}

// poolConn is one session's view of the pool: a single attempt picks the
// session's current home (sticky once a replica answers), exchanges over
// the pooled upstream, and re-homes on owner redirects. The rendezvous
// rank is recomputed from the pool's live membership on every attempt, so
// an UpdatePeers call re-routes existing sessions without re-attaching
// them. All errors it returns are retryable except pool shutdown — the
// hrt.Retry layer above decides whether the next attempt happens.
type poolConn struct {
	p       *MuxPool
	session uint64

	mu sync.Mutex
	// home is the replica that last answered for this session ("" probes
	// the rendezvous rank in order).
	home string
}

func (c *poolConn) RoundTrip(req hrt.Request) (hrt.Response, error) {
	c.mu.Lock()
	home := c.home
	c.mu.Unlock()
	rank := Rank(c.session, c.p.Peers())
	candidates := rank
	if home != "" {
		candidates = make([]string, 0, len(rank)+1)
		candidates = append(candidates, home)
		for _, a := range rank {
			if a != home {
				candidates = append(candidates, a)
			}
		}
	}
	var lastErr error
	for _, addr := range candidates {
		mt, err := c.p.transport(addr)
		if err != nil {
			if !hrt.Retryable(err) {
				return hrt.Response{}, err // pool closed or mux refused
			}
			lastErr = err
			continue
		}
		resp, err := mt.Exchange(req)
		if err != nil {
			if !hrt.Retryable(err) {
				return hrt.Response{}, err
			}
			lastErr = err
			continue // dead or unresponsive replica: next in rank
		}
		if oe := hrt.ParseOwnerRedirect(resp.Err, addr); oe != nil {
			// The fleet homes this session elsewhere. Adopt the named
			// owner and surface the redirect as a retryable error so the
			// Retry layer re-sends the same (session, seq) there — the
			// shared connection stays up for every other session.
			c.setHome(oe.Owner)
			return hrt.Response{}, oe
		}
		c.setHome(addr)
		return resp, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: empty fleet membership")
	}
	return hrt.Response{}, fmt.Errorf("cluster: session %d found no live replica among %v: %w",
		req.Session, rank, lastErr)
}

func (c *poolConn) setHome(addr string) {
	c.mu.Lock()
	c.home = addr
	c.mu.Unlock()
}
