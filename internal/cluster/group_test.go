package cluster

import (
	"net"
	"testing"
	"time"

	"slicehide/internal/wal"
)

// deadAddr returns an address that refuses TCP dials: a listener is bound
// to reserve the port, then closed before the test uses it.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// testGroup builds a group with its background loops left unstarted, so
// tests drive probeOnce by hand.
func testGroup(t *testing.T, peer string, commitTimeout time.Duration) *Group {
	t.Helper()
	cfg := Config{
		Self:          "127.0.0.1:1",
		Peers:         []string{"127.0.0.1:1", peer},
		DialTimeout:   50 * time.Millisecond,
		CommitTimeout: commitTimeout,
	}
	if err := cfg.fill(); err != nil {
		t.Fatal(err)
	}
	g := &Group{
		cfg:           cfg,
		tracker:       wal.NewOffsetTracker(),
		members:       NewMembership(cfg.Peers),
		alive:         map[string]bool{peer: true},
		fails:         make(map[string]int),
		deadSince:     make(map[string]time.Time),
		promoted:      make(map[string]bool),
		pumps:         make(map[string]chan struct{}),
		stop:          make(chan struct{}),
		pumpConns:     make(map[string]net.Conn),
		recvPos:       make(map[string]wal.Position),
		targets:       make(map[string]wal.Position),
		recvActive:    make(map[string]int),
		recvAnnounced: make(map[string]int),
	}
	return g
}

// TestCommitGateReleasesOnProberDeath is the regression test for the
// ack-degrade gate: when the prober declares the last connected follower
// dead, a response blocked in WaitCommitted must release immediately —
// not wait out the full commit timeout on a tracker entry whose socket
// still looks healthy.
func TestCommitGateReleasesOnProberDeath(t *testing.T) {
	peer := deadAddr(t)
	const commitTimeout = 30 * time.Second
	g := testGroup(t, peer, commitTimeout)

	// The follower is registered (its pump stream is "up") but will never
	// acknowledge: the classic wedged-but-connected shape.
	g.tracker.Register(peer)
	pumpLocal, pumpRemote := net.Pipe()
	g.trackPumpConn(peer, pumpLocal)

	released := make(chan time.Duration, 1)
	start := time.Now()
	go func() {
		g.WaitCommitted(1, 100)
		released <- time.Since(start)
	}()

	// Let the waiter block, then drive the prober to the death threshold.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-released:
		t.Fatal("WaitCommitted returned before the follower was declared dead")
	default:
	}
	for i := 0; i < probeFailThreshold; i++ {
		g.probeOnce()
	}

	select {
	case d := <-released:
		if d >= commitTimeout {
			t.Fatalf("commit gate waited out the full timeout (%v)", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit gate still blocked after the prober declared the last follower dead")
	}
	// Releasing via peer death is degradation the gate observed directly —
	// not a timeout — so it must not count as a sync stall.
	if got := g.syncStalls.Load(); got != 0 {
		t.Errorf("sync stalls %d, want 0 (death release is not a timeout)", got)
	}

	// The dead peer's pump connection must be severed too, kicking the pump
	// into its reconnect backoff instead of trusting a half-dead socket.
	pumpRemote.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := pumpRemote.Read(make([]byte, 1)); err == nil {
		t.Error("dead peer's pump connection was not closed")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Error("dead peer's pump connection was left open (read timed out instead of failing)")
	}
}

// TestProbeDeathRequiresThreshold pins the flap damping around the death
// release: a single failed probe must not drop a registered follower from
// the commit tracker.
func TestProbeDeathRequiresThreshold(t *testing.T) {
	peer := deadAddr(t)
	g := testGroup(t, peer, time.Second)
	g.tracker.Register(peer)

	for i := 0; i < probeFailThreshold-1; i++ {
		g.probeOnce()
	}
	if _, n := g.tracker.Min(); n != 1 {
		t.Fatalf("follower dropped after %d failed probes, want drop only at %d",
			probeFailThreshold-1, probeFailThreshold)
	}
	g.probeOnce()
	if _, n := g.tracker.Min(); n != 0 {
		t.Fatal("follower still tracked after the prober declared it dead")
	}
}
