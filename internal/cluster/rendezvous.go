// Package cluster turns independent hiddend replicas into a fleet: a
// primary/follower group per session. Sessions are placed onto replicas
// with rendezvous (highest-random-weight) hashing over the live member
// set, the owning primary streams its WAL records to the other replicas
// after each mutating request, and when a primary dies the client's
// reconnecting transport re-resolves the session onto the promoted
// follower — which has replayed the streamed journal into its own stores
// and answers retried (session, seq) stamps from the replicated dedup
// cache, so the handover preserves exactly-once execution.
package cluster

import (
	"hash/fnv"
	"sort"
)

// mix64 is the splitmix64 finalizer — the same full-avalanche mixer the
// hidden server uses to stripe sessions across shards, reused here so
// consecutive session ids spread independently across replicas.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// score is the rendezvous weight of (session, replica): each replica
// hashes independently, so removing one replica never moves a session
// between the survivors — only the dead replica's sessions re-home.
func score(session uint64, replica string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(replica))
	return mix64(h.Sum64() ^ mix64(session))
}

// Rank orders replicas by descending rendezvous weight for session:
// Rank[0] is the session's owner, Rank[1] its first failover target, and
// so on. Ties (only possible with duplicate addresses) break by address
// so the order is total and identical on every node. The input slice is
// not modified.
func Rank(session uint64, replicas []string) []string {
	out := append([]string(nil), replicas...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := score(session, out[i]), score(session, out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Owner returns the replica that owns session — the highest-weight member
// — or "" when the replica set is empty.
func Owner(session uint64, replicas []string) string {
	if len(replicas) == 0 {
		return ""
	}
	best := replicas[0]
	bestScore := score(session, best)
	for _, r := range replicas[1:] {
		if s := score(session, r); s > bestScore || (s == bestScore && r < best) {
			best, bestScore = r, s
		}
	}
	return best
}
