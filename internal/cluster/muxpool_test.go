package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"slicehide/internal/core"
	"slicehide/internal/hrt"
	"slicehide/internal/interp"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

const poolTestSrc = `
func work(x: int, y: int): int {
    var k: int = x * 3 + y;
    var t: int = k + x;
    return t - y;
}
func main() { print(work(2, 1)); }
`

// poolTestServer starts a TCPServer hosting the split workload and
// returns its address plus the component/fragment to drive.
func poolTestServer(t *testing.T, router hrt.Router) (string, *hrt.Server, string, int) {
	t.Helper()
	prog, err := ir.Compile(poolTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SplitProgram(prog, []core.Spec{{Func: "work", Seed: "k"}}, slicer.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	fragID := -1
	for id := range res.Splits["work"].Hidden.Frags {
		if fragID < 0 || id < fragID {
			fragID = id
		}
	}
	srv := hrt.NewServer(hrt.NewRegistry(res))
	ts := &hrt.TCPServer{Server: srv, Router: router}
	addr, err := ts.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return addr.String(), srv, "work", fragID
}

// driveSession runs one session's enter/call/exit cycle over tr.
func driveSession(t *testing.T, tr hrt.Transport, comp string, fragID, calls int) {
	t.Helper()
	sess := &hrt.Session{T: tr}
	inst, err := sess.Enter(comp, 0)
	if err != nil {
		t.Fatalf("enter: %v", err)
	}
	args := []interp.Value{interp.IntV(2), interp.IntV(1)}
	for i := 0; i < calls; i++ {
		if _, err := sess.Call(comp, inst, fragID, args); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if err := sess.Exit(comp, inst); err != nil {
		t.Fatalf("exit: %v", err)
	}
}

// TestMuxPoolSharesOneConnPerReplica pins the pool's whole point: many
// sessions against one replica ride a single multiplexed connection.
func TestMuxPoolSharesOneConnPerReplica(t *testing.T) {
	addr, srv, comp, fragID := poolTestServer(t, nil)
	pool := NewMuxPool(MuxPoolConfig{Peers: []string{addr}})
	defer pool.Close()

	const sessions = 8
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			driveSession(t, pool.SessionTransport(0), comp, fragID, 10)
		}()
	}
	wg.Wait()
	if got := pool.Conns(); got != 1 {
		t.Errorf("pool opened %d connections for %d sessions, want 1", got, sessions)
	}
	if got := srv.Stats().Calls; got != sessions*10 {
		t.Errorf("server executed %d calls, want %d", got, sessions*10)
	}
}

// redirectRouter bounces every unknown session to a fixed owner.
type redirectRouter struct{ owner string }

func (r redirectRouter) Route(session uint64, known bool) (string, bool) {
	if known {
		return "", false
	}
	return r.owner, true
}

// TestMuxPoolFollowsOwnerRedirect pins re-homing: a session whose
// rendezvous rank leads with a replica that redirects must land on the
// named owner without tearing either pooled connection down.
func TestMuxPoolFollowsOwnerRedirect(t *testing.T) {
	ownerAddr, ownerSrv, comp, fragID := poolTestServer(t, nil)
	bouncerAddr, bouncerSrv, _, _ := poolTestServer(t, redirectRouter{owner: ownerAddr})
	peers := []string{bouncerAddr, ownerAddr}

	// Pick a session the rendezvous rank homes on the bouncer, so the
	// first exchange is guaranteed to be redirected.
	var session uint64
	for s := uint64(1); ; s++ {
		if Rank(s, peers)[0] == bouncerAddr {
			session = s
			break
		}
	}

	pool := NewMuxPool(MuxPoolConfig{Peers: peers})
	defer pool.Close()
	driveSession(t, pool.SessionTransport(session), comp, fragID, 10)

	if got := ownerSrv.Stats().Calls; got != 10 {
		t.Errorf("owner executed %d calls, want 10", got)
	}
	if got := bouncerSrv.Stats().Calls; got != 0 {
		t.Errorf("bouncer executed %d calls, want 0 (should only redirect)", got)
	}
	if got := pool.Conns(); got != 2 {
		t.Errorf("pool holds %d connections, want 2 (one per replica)", got)
	}
}

// TestMuxPoolFailsOverDeadReplica pins rank fallback: a session whose
// first-ranked replica refuses connections must complete against the
// next one, and the dead replica's dial failure must not be cached.
func TestMuxPoolFailsOverDeadReplica(t *testing.T) {
	liveAddr, srv, comp, fragID := poolTestServer(t, nil)
	// Reserve (and immediately release) a port so the address refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()
	peers := []string{deadAddr, liveAddr}

	var session uint64
	for s := uint64(1); ; s++ {
		if Rank(s, peers)[0] == deadAddr {
			session = s
			break
		}
	}

	pool := NewMuxPool(MuxPoolConfig{
		Peers:   peers,
		Timeout: time.Second,
		Policy:  hrt.RetryPolicy{Retries: 4, BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond},
	})
	defer pool.Close()
	driveSession(t, pool.SessionTransport(session), comp, fragID, 10)

	if got := srv.Stats().Calls; got != 10 {
		t.Errorf("live replica executed %d calls, want 10", got)
	}
	if got := pool.Conns(); got != 1 {
		t.Errorf("pool holds %d connections, want 1 (dead dial not cached)", got)
	}
}
