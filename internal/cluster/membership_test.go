package cluster

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestMembershipEncodeParseRoundTrip(t *testing.T) {
	m := NewMembership([]string{"c:1", "a:1", "b:1", "a:1", " "})
	if got := m.Encode(); got != "1|a:1,b:1,c:1" {
		t.Fatalf("Encode = %q", got)
	}
	back, err := ParseMembership(m.Encode())
	if err != nil {
		t.Fatalf("ParseMembership: %v", err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Fatalf("round trip: got %+v want %+v", back, m)
	}
	if _, err := ParseMembership("nope"); err == nil {
		t.Fatal("missing separator accepted")
	}
	if _, err := ParseMembership("x|a"); err == nil {
		t.Fatal("bad epoch accepted")
	}
	empty, err := ParseMembership("7|")
	if err != nil || empty.Epoch != 7 || len(empty.Members) != 0 {
		t.Fatalf("empty list: %+v err=%v", empty, err)
	}
}

func TestMembershipJoinLeave(t *testing.T) {
	m := NewMembership([]string{"a:1", "b:1"})
	j, changed := m.WithJoined("c:1")
	if !changed || j.Epoch != 2 || !j.Has("c:1") {
		t.Fatalf("join: %+v changed=%v", j, changed)
	}
	if _, changed := j.WithJoined("c:1"); changed {
		t.Fatal("re-join of a member bumped the epoch")
	}
	if _, changed := j.WithJoined("bad,addr"); changed {
		t.Fatal("address with codec separator accepted")
	}
	l, changed := j.WithLeft("a:1")
	if !changed || l.Epoch != 3 || l.Has("a:1") || !l.Has("b:1") || !l.Has("c:1") {
		t.Fatalf("leave: %+v changed=%v", l, changed)
	}
	if _, changed := l.WithLeft("a:1"); changed {
		t.Fatal("leave of a non-member bumped the epoch")
	}
}

func TestMembershipSupersedes(t *testing.T) {
	a := NewMembership([]string{"a:1"})
	b, _ := a.WithJoined("b:1")
	if !b.Supersedes(a) || a.Supersedes(b) {
		t.Fatal("higher epoch must supersede")
	}
	// Same epoch, different sets: exactly one side wins, both agree on it.
	x := Membership{Epoch: 5, Members: []string{"a:1", "b:1"}}
	y := Membership{Epoch: 5, Members: []string{"a:1", "c:1"}}
	if x.Supersedes(y) == y.Supersedes(x) {
		t.Fatal("equal-epoch tiebreak must pick exactly one winner")
	}
	if a.Supersedes(a) {
		t.Fatal("a table must not supersede itself")
	}
}

func TestMembershipSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "membership")
	m, _ := NewMembership([]string{"a:1", "b:1"}).WithJoined("c:1")
	if err := m.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, ok := LoadMembership(path)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Fatalf("Load: got %+v ok=%v want %+v", got, ok, m)
	}
	if _, ok := LoadMembership(path + ".missing"); ok {
		t.Fatal("missing file loaded")
	}
}
