package cluster

import (
	"fmt"
	"testing"
)

func replicaSet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return out
}

// Placement must be near-uniform: with rendezvous hashing over a good
// mixer, each of N replicas should own about 1/N of the sessions. The
// fleet's capacity planning (and the chaos harness's "busiest backend"
// choice) assumes no replica is a hot spot.
func TestRendezvousDistribution(t *testing.T) {
	const sessions = 40000
	for n := 3; n <= 16; n++ {
		replicas := replicaSet(n)
		counts := make(map[string]int, n)
		for s := uint64(1); s <= sessions; s++ {
			counts[Owner(s, replicas)]++
		}
		want := float64(sessions) / float64(n)
		for _, r := range replicas {
			got := float64(counts[r])
			skew := (got - want) / want
			if skew < -0.10 || skew > 0.10 {
				t.Errorf("n=%d replica %s owns %.0f sessions, want %.0f ±10%% (skew %+.1f%%)",
					n, r, got, want, skew*100)
			}
		}
	}
}

// Removing one replica must re-home only the sessions it owned: every
// session owned by a survivor keeps its owner. This is the property that
// makes failover surgical — a death never shuffles unrelated sessions
// between healthy replicas.
func TestRendezvousStabilityUnderRemoval(t *testing.T) {
	const sessions = 5000
	replicas := replicaSet(7)
	before := make(map[uint64]string, sessions)
	for s := uint64(1); s <= sessions; s++ {
		before[s] = Owner(s, replicas)
	}
	for drop := range replicas {
		survivors := make([]string, 0, len(replicas)-1)
		for i, r := range replicas {
			if i != drop {
				survivors = append(survivors, r)
			}
		}
		for s := uint64(1); s <= sessions; s++ {
			after := Owner(s, survivors)
			if before[s] == replicas[drop] {
				if after == replicas[drop] {
					t.Fatalf("session %d still owned by removed replica %s", s, replicas[drop])
				}
				continue
			}
			if after != before[s] {
				t.Fatalf("removing %s moved session %d from survivor %s to %s",
					replicas[drop], s, before[s], after)
			}
		}
	}
}

// Rank's head must agree with Owner, and the order must be total and
// deterministic — it is the client resolver's probe order, so every node
// and every client must compute the same one.
func TestRankAgreesWithOwner(t *testing.T) {
	replicas := replicaSet(5)
	for s := uint64(1); s <= 2000; s++ {
		rank := Rank(s, replicas)
		if len(rank) != len(replicas) {
			t.Fatalf("Rank returned %d entries, want %d", len(rank), len(replicas))
		}
		if rank[0] != Owner(s, replicas) {
			t.Fatalf("session %d: Rank[0] = %s, Owner = %s", s, rank[0], Owner(s, replicas))
		}
		seen := make(map[string]bool, len(rank))
		for _, r := range rank {
			if seen[r] {
				t.Fatalf("session %d: duplicate %s in rank", s, r)
			}
			seen[r] = true
		}
		again := Rank(s, replicas)
		for i := range rank {
			if rank[i] != again[i] {
				t.Fatalf("session %d: rank not deterministic at %d", s, i)
			}
		}
	}
}

// Owner of the empty set is "" — the router treats that as serve-locally,
// never as a redirect to nowhere.
func TestOwnerEmpty(t *testing.T) {
	if got := Owner(42, nil); got != "" {
		t.Fatalf("Owner(empty) = %q, want empty", got)
	}
}

// TestRendezvousStabilityAcrossMembershipEpochs walks a fleet through the
// elastic lifecycle — 3 replicas, a 4th joins, then leaves again — using
// the epoch-versioned membership table the gossip layer ships, and pins
// the surgical-placement property at each transition: growing the fleet
// moves sessions only ONTO the joiner (never between incumbents), and no
// more than roughly its fair HRW share; shrinking moves only the leaver's
// sessions back, landing the fleet on exactly the owners it started with.
func TestRendezvousStabilityAcrossMembershipEpochs(t *testing.T) {
	const sessions = 5000
	joiner := "10.0.0.99:7070"

	m3 := NewMembership(replicaSet(3))
	m4, ok := m3.WithJoined(joiner)
	if !ok {
		t.Fatal("join rejected")
	}
	m3b, ok := m4.WithLeft(joiner)
	if !ok {
		t.Fatal("leave rejected")
	}
	if !(m4.Epoch > m3.Epoch && m3b.Epoch > m4.Epoch) {
		t.Fatalf("epochs must strictly increase: %d, %d, %d", m3.Epoch, m4.Epoch, m3b.Epoch)
	}
	if !m4.Supersedes(m3) || !m3b.Supersedes(m4) || m3.Supersedes(m4) {
		t.Fatal("Supersedes must follow the epoch order")
	}

	ownersAt := func(m Membership) map[uint64]string {
		owners := make(map[uint64]string, sessions)
		for s := uint64(1); s <= sessions; s++ {
			owners[s] = Owner(s, m.Members)
		}
		return owners
	}
	before := ownersAt(m3)
	grown := ownersAt(m4)
	shrunk := ownersAt(m3b)

	moved := 0
	for s := uint64(1); s <= sessions; s++ {
		if grown[s] != before[s] {
			if grown[s] != joiner {
				t.Fatalf("join moved session %d between incumbents: %s -> %s",
					s, before[s], grown[s])
			}
			moved++
		}
	}
	// The joiner's fair HRW share is 1/4 of the keyspace; allow generous
	// sampling slack but reject wholesale reshuffles.
	if share := float64(moved) / sessions; share > 0.35 {
		t.Errorf("join re-homed %.0f%% of sessions, want about 25%%", share*100)
	}
	if moved == 0 {
		t.Error("joiner received no sessions — it would idle forever")
	}

	for s := uint64(1); s <= sessions; s++ {
		if shrunk[s] != before[s] {
			t.Fatalf("3->4->3 round trip moved session %d: %s -> %s (joiner had %s)",
				s, before[s], shrunk[s], grown[s])
		}
	}
}
