package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"slicehide/internal/hrt"
	"slicehide/internal/obs"
	"slicehide/internal/wal"
)

// The replication pump: one goroutine per peer on the streaming (primary)
// side. Each pump dials the peer's serving port, performs the OpRepl
// handshake, and then follows this replica's own journal with a tail
// scanner — every record this replica executes (or itself receives from a
// peer) is shipped, in journal order, as a record frame; the peer echoes
// ack frames carrying the stream's (generation, index) coordinates, which
// feed the offset tracker that the semi-synchronous commit gate and the
// lag gauge read. A pump that loses its connection drops the peer from
// the tracker (so commit waits never wedge on a dead follower), backs
// off, and reconnects — re-streaming from the oldest retained generation;
// the receiver's replay high-water marks make the re-stream idempotent.

// pumpBackoffMin/Max bound the reconnect backoff.
const (
	pumpBackoffMin = 50 * time.Millisecond
	pumpBackoffMax = 2 * time.Second
)

func (g *Group) pumpLoop(peer string) {
	defer g.wg.Done()
	backoff := pumpBackoffMin
	for {
		select {
		case <-g.stop:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", peer, g.cfg.DialTimeout)
		if err != nil {
			if !g.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, pumpBackoffMax)
			continue
		}
		g.trackPumpConn(peer, conn)
		err = g.streamTo(peer, conn)
		g.untrackPumpConn(peer)
		g.tracker.Drop(peer)
		conn.Close()
		select {
		case <-g.stop:
			return
		default:
		}
		if err != nil && !errors.Is(err, io.EOF) {
			g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_pump_error",
				obs.Str("peer", peer), obs.Err(err))
		}
		if !g.sleep(backoff) {
			return
		}
		backoff = min(backoff*2, pumpBackoffMax)
	}
}

// sleep waits d or until the group stops; false means stopping.
func (g *Group) sleep(d time.Duration) bool {
	select {
	case <-g.stop:
		return false
	case <-time.After(d):
		return true
	}
}

func (g *Group) trackPumpConn(peer string, c net.Conn) {
	g.pumpMu.Lock()
	g.pumpConns[peer] = c
	g.pumpMu.Unlock()
}

func (g *Group) untrackPumpConn(peer string) {
	g.pumpMu.Lock()
	delete(g.pumpConns, peer)
	g.pumpMu.Unlock()
}

// streamTo runs one connection's worth of replication to peer: handshake,
// register, then stream generations in order forever (until the link or
// the group dies). The ack reader runs concurrently so a slow follower
// back-pressures through the socket, not through lockstep.
func (g *Group) streamTo(peer string, conn net.Conn) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	conn.SetDeadline(time.Now().Add(g.cfg.CommitTimeout))
	if err := hrt.WriteRequest(w, hrt.Request{Op: hrt.OpRepl, Fn: g.cfg.Self}); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	resp, err := hrt.ReadResponse(r)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("cluster: peer %s refused replication: %s", peer, resp.Err)
	}
	conn.SetDeadline(time.Time{})
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_pump_connected", obs.Str("peer", peer))
	g.tracker.Register(peer)

	// Ack reader: every ack lifts the peer's tracked position, releasing
	// commit waiters. On any read error it closes the connection so the
	// writer side unblocks too.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer conn.Close()
		for {
			f, err := hrt.ReadReplFrame(r)
			if err != nil {
				return
			}
			if f.Type == hrt.ReplFrameAck {
				g.tracker.Ack(peer, wal.Position{Gen: f.Gen, Records: f.Index})
			}
		}
	}()
	err = g.streamRecords(conn, w)
	conn.Close()
	<-readerDone
	return err
}

// streamRecords follows the local journal from its oldest retained
// generation and ships every record over conn.
func (g *Group) streamRecords(conn net.Conn, w *bufio.Writer) error {
	p := g.ts.Persist
	gens, err := p.Generations()
	if err != nil {
		return err
	}
	var gen uint64
	if len(gens) > 0 {
		gen = gens[0]
	} else {
		gen, _ = p.CurrentPosition()
	}
	for {
		opened, err := g.streamGeneration(conn, w, gen)
		if err == nil {
			gen++
			continue
		}
		if opened {
			return err
		}
		// The generation's journal could not be opened — pruned by a
		// snapshot while this pump was behind, or rotated into existence
		// concurrently. Jump to the oldest retained generation beyond it;
		// the receiver's replay high-water marks absorb any overlap.
		gens, lerr := p.Generations()
		if lerr != nil {
			return lerr
		}
		next, found := uint64(0), false
		for _, gn := range gens {
			if gn > gen {
				next, found = gn, true
				break
			}
		}
		if !found {
			if curGen, _ := p.CurrentPosition(); curGen > gen {
				gen = curGen
				continue
			}
			return err
		}
		gen = next
	}
}

// streamGeneration streams generation gen until it is sealed by a journal
// rotation, then returns nil so the caller advances to gen+1. The first
// result reports whether the generation's journal file could be opened.
func (g *Group) streamGeneration(conn net.Conn, w *bufio.Writer, gen uint64) (bool, error) {
	p := g.ts.Persist
	tail, err := wal.OpenTail(p.JournalFile(gen), 0)
	if err != nil {
		return false, err
	}
	defer tail.Close()
	var idx int64
	sealed := false
	for {
		// Acquire the notification channel before reading: an append that
		// lands between the read and the wait closes this channel, so the
		// wakeup cannot be lost.
		notify := p.AppendNotify()
		payload, err := tail.Next()
		if err == nil {
			idx++
			if serr := g.sendRecord(conn, w, gen, idx, payload); serr != nil {
				return true, serr
			}
			continue
		}
		if err != wal.ErrTailCaughtUp {
			return true, err
		}
		if sealed {
			// Rotation was observed on a previous pass, so the file was
			// already final before this read: the generation is complete.
			return true, nil
		}
		if curGen, _ := p.CurrentPosition(); curGen > gen {
			// Rotation commits under the write quiesce, after every append
			// to the old generation — but some of those appends may have
			// landed after our caught-up read. One more pass drains them.
			sealed = true
			continue
		}
		select {
		case <-notify:
		case <-g.stop:
			return true, errors.New("cluster: group closed")
		case <-time.After(500 * time.Millisecond):
			// Paranoia poll: nothing should be lost given the
			// acquire-before-read protocol, but a cheap re-check beats a
			// wedged fleet if that invariant ever breaks.
		}
	}
}

func (g *Group) sendRecord(conn net.Conn, w *bufio.Writer, gen uint64, idx int64, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(g.cfg.CommitTimeout))
	f := hrt.ReplFrame{Type: hrt.ReplFrameRecord, Gen: gen, Index: idx, Payload: payload}
	if err := hrt.WriteReplFrame(w, f); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	g.replBytes.Add(int64(21 + len(payload)))
	return nil
}

// ---------------------------------------------------------------------------
// Inbound side

// handleRepl implements hrt.TCPServer.ReplHandler: it owns a connection a
// peer switched into replication mode, applying each record frame to the
// local server and acknowledging it. An apply error stops the acks and
// drops the stream — the primary will reconnect and re-stream, and if the
// error is persistent this replica's lag (and its /readyz) make the
// damage visible instead of silently diverging.
func (g *Group) handleRepl(conn net.Conn, r *bufio.Reader) {
	peer := conn.RemoteAddr().String()
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_repl_stream_open", obs.Str("peer", peer))
	w := bufio.NewWriter(conn)
	for {
		f, err := hrt.ReadReplFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_repl_stream_error",
					obs.Str("peer", peer), obs.Err(err))
			}
			return
		}
		if f.Type != hrt.ReplFrameRecord {
			continue
		}
		g.replReceived.Add(1)
		if err := g.ts.ApplyReplicated(f.Payload); err != nil {
			g.cfg.Tracer.Emit(obs.LevelError, "cluster_repl_apply_error",
				obs.Str("peer", peer), obs.Err(err))
			return
		}
		g.replApplied.Add(1)
		g.replBytes.Add(int64(21 + len(f.Payload)))
		conn.SetWriteDeadline(time.Now().Add(g.cfg.CommitTimeout))
		if err := hrt.WriteReplFrame(w, hrt.ReplFrame{Type: hrt.ReplFrameAck, Gen: f.Gen, Index: f.Index}); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Client-side resolution

// SessionResolver returns a resolver for hrt.ReconnectConfig: it ranks the
// fleet by the session's rendezvous order and returns the first replica
// that accepts a TCP connection — which is exactly the replica the fleet's
// own routers consider the session's live owner, so the redirected (or
// reconnecting) client and the servers converge on the same home.
func SessionResolver(peers []string, session uint64, dialTimeout time.Duration) func() (string, error) {
	if dialTimeout <= 0 {
		dialTimeout = 500 * time.Millisecond
	}
	rank := Rank(session, peers)
	return func() (string, error) {
		for _, addr := range rank {
			conn, err := net.DialTimeout("tcp", addr, dialTimeout)
			if err == nil {
				conn.Close()
				return addr, nil
			}
		}
		return "", fmt.Errorf("cluster: no live replica for session %d among %v", session, rank)
	}
}
