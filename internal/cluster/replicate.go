package cluster

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"slicehide/internal/hrt"
	"slicehide/internal/obs"
	"slicehide/internal/wal"
)

// The replication pump: one goroutine per peer on the streaming (primary)
// side. Each pump dials the peer's serving port, performs the OpRepl
// handshake — whose response carries the peer's resume position, the
// newest (generation, index) it has already applied from us — and then
// follows this replica's own journal with a tail scanner from that
// position, shipping each record as a record frame; the peer echoes ack
// frames carrying the stream's (generation, index) coordinates, which
// feed the offset tracker that the semi-synchronous commit gate and the
// lag gauge read.
//
// When the peer's resume position predates our journal retention (it was
// down across a snapshot + prune, or it is a cold joiner with nothing at
// all), record streaming cannot catch it up — the history it needs is
// gone. The pump then ships our newest snapshot as a chunked, CRC-framed,
// chunk-resumable transfer; the peer imports it as its own state base and
// the stream resumes from the snapshot's cut position. A sender whose
// retention has pruned the peer's resume point NEVER silently falls back
// to oldest-retained streaming: it does so only when the receiver
// explicitly answers "proceed" (meaning the receiver already holds a
// state base covering the gap). A cold replica's first state therefore
// only ever arrives as a snapshot import or as a full-history stream from
// generation zero — either way, gap-free.

// pumpBackoffMin/Max bound the reconnect backoff.
const (
	pumpBackoffMin = 50 * time.Millisecond
	pumpBackoffMax = 2 * time.Second
)

// maxSnapXfer bounds a staged snapshot transfer (defense against a
// corrupt or hostile SnapBegin length).
const maxSnapXfer = 1 << 30

// snapMetaSize is the fixed SnapBegin payload layout:
// total(u64) payloadCRC(u32) chunkSize(u32) tailGen(u64) tailRecords(u64).
const snapMetaSize = 32

func encodeSnapMeta(total int64, crc uint32, chunk int, tail wal.Position) []byte {
	b := make([]byte, snapMetaSize)
	binary.LittleEndian.PutUint64(b[0:8], uint64(total))
	binary.LittleEndian.PutUint32(b[8:12], crc)
	binary.LittleEndian.PutUint32(b[12:16], uint32(chunk))
	binary.LittleEndian.PutUint64(b[16:24], tail.Gen)
	binary.LittleEndian.PutUint64(b[24:32], uint64(tail.Records))
	return b
}

func decodeSnapMeta(b []byte) (total int64, crc uint32, chunk int, tail wal.Position, err error) {
	if len(b) != snapMetaSize {
		return 0, 0, 0, wal.Position{}, fmt.Errorf("cluster: snapshot meta is %d bytes, want %d", len(b), snapMetaSize)
	}
	total = int64(binary.LittleEndian.Uint64(b[0:8]))
	crc = binary.LittleEndian.Uint32(b[8:12])
	chunk = int(binary.LittleEndian.Uint32(b[12:16]))
	tail = wal.Position{
		Gen:     binary.LittleEndian.Uint64(b[16:24]),
		Records: int64(binary.LittleEndian.Uint64(b[24:32])),
	}
	if total <= 0 || total > maxSnapXfer || chunk <= 0 {
		return 0, 0, 0, wal.Position{}, fmt.Errorf("cluster: snapshot meta out of range (total %d, chunk %d)", total, chunk)
	}
	return total, crc, chunk, tail, nil
}

// snapStage is a partially received snapshot transfer. At most one is
// active per replica (one sender owns the import); it lives in memory, so
// a receiver crash restarts the transfer from scratch while a mere
// connection drop resumes at chunk granularity (SnapBegin re-offer →
// SnapAck carrying the staged chunk count).
type snapStage struct {
	sender string
	gen    uint64
	total  int64
	crc    uint32
	chunk  int
	tail   wal.Position
	buf    []byte
	chunks int64 // contiguous chunks staged so far
	start  time.Time
}

func (st *snapStage) nchunks() int64 {
	return (st.total + int64(st.chunk) - 1) / int64(st.chunk)
}

// sealTable records, per streaming connection, how many records each
// sealed generation held, so follower acks can be lifted across rotation
// boundaries: an ack of {G, N} where generation G sealed at N records is
// equivalently {G+1, 0}. Without the lift, a journal that rotates right
// after its last record leaves the fully-caught-up follower's newest ack
// in old-generation coordinates, and the lag gauge's conservative
// cross-generation floor reports phantom lag on an empty journal.
type sealTable struct {
	mu     sync.Mutex
	counts map[uint64]int64
}

func newSealTable() *sealTable {
	return &sealTable{counts: make(map[uint64]int64)}
}

func (s *sealTable) seal(gen uint64, n int64) {
	s.mu.Lock()
	s.counts[gen] = n
	s.mu.Unlock()
}

// normalize lifts pos through every sealed-generation boundary it sits
// exactly on.
func (s *sealTable) normalize(pos wal.Position) wal.Position {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		n, ok := s.counts[pos.Gen]
		if !ok || pos.Records != n {
			return pos
		}
		pos = wal.Position{Gen: pos.Gen + 1, Records: 0}
	}
}

func (g *Group) pumpLoop(peer string, stopCh <-chan struct{}) {
	defer g.wg.Done()
	backoff := pumpBackoffMin
	for {
		select {
		case <-g.stop:
			return
		case <-stopCh:
			return
		default:
		}
		conn, err := net.DialTimeout("tcp", peer, g.cfg.DialTimeout)
		if err != nil {
			if !g.sleepCh(backoff, stopCh) {
				return
			}
			backoff = min(backoff*2, pumpBackoffMax)
			continue
		}
		g.trackPumpConn(peer, conn)
		err = g.streamTo(peer, conn, stopCh)
		g.untrackPumpConn(peer)
		g.tracker.Drop(peer)
		conn.Close()
		select {
		case <-g.stop:
			return
		case <-stopCh:
			return
		default:
		}
		if err != nil && !errors.Is(err, io.EOF) {
			g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_pump_error",
				obs.Str("peer", peer), obs.Err(err))
		}
		if !g.sleepCh(backoff, stopCh) {
			return
		}
		backoff = min(backoff*2, pumpBackoffMax)
	}
}

// sleepCh waits d or until the group (or this pump) stops; false means
// stopping. A nil stopCh waits on the group alone.
func (g *Group) sleepCh(d time.Duration, stopCh <-chan struct{}) bool {
	select {
	case <-g.stop:
		return false
	case <-stopCh:
		return false
	case <-time.After(d):
		return true
	}
}

func (g *Group) trackPumpConn(peer string, c net.Conn) {
	g.pumpMu.Lock()
	g.pumpConns[peer] = c
	g.pumpMu.Unlock()
}

func (g *Group) untrackPumpConn(peer string) {
	g.pumpMu.Lock()
	delete(g.pumpConns, peer)
	g.pumpMu.Unlock()
}

// streamTo runs one connection's worth of replication to peer: handshake
// (learning the peer's resume position), a snapshot transfer if that
// position was pruned, register, then stream generations in order forever
// (until the link or the group dies). The ack reader runs concurrently so
// a slow follower back-pressures through the socket, not through
// lockstep.
func (g *Group) streamTo(peer string, conn net.Conn, stopCh <-chan struct{}) error {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	conn.SetDeadline(time.Now().Add(g.cfg.CommitTimeout))
	if err := hrt.WriteRequest(w, hrt.Request{Op: hrt.OpRepl, Fn: g.cfg.Self}); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	resp, err := hrt.ReadResponse(r)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return fmt.Errorf("cluster: peer %s refused replication: %s", peer, resp.Err)
	}
	conn.SetDeadline(time.Time{})
	resume := wal.Position{Gen: resp.Seq, Records: int64(resp.Ack)}

	p := g.ts.Persist
	gens, err := p.Generations()
	if err != nil {
		return err
	}
	oldest := uint64(0)
	if len(gens) > 0 {
		oldest = gens[0]
	} else {
		oldest, _ = p.CurrentPosition()
	}
	if curGen, curRecords := p.CurrentPosition(); resume.Gen > curGen ||
		(resume.Gen == curGen && resume.Records > curRecords) {
		// The peer claims to be ahead of us — it applied records from a
		// journal history we no longer have (we lost our data dir, or it
		// talked to a different incarnation). Re-stream from the oldest
		// retained generation; its replay high-water marks absorb overlap.
		resume = wal.Position{Gen: oldest, Records: 0}
	}
	if resume.Gen < oldest {
		// The peer's resume point predates retention: journal streaming
		// alone would leave a silent gap. Ship the newest snapshot; fall
		// back to oldest-retained streaming only on an explicit "proceed"
		// (the peer already holds a state base).
		newResume, sent, release, serr := g.sendSnapshot(peer, conn, r, w)
		if release != nil {
			// Hold the snapshot generation pinned against pruning until this
			// stream ends — its journal is the next thing we tail.
			defer release()
		}
		if serr != nil {
			return serr
		}
		if sent {
			resume = newResume
		} else {
			resume = wal.Position{Gen: oldest, Records: 0}
		}
	}

	// Announce the stream's catch-up target: our position as of now. The
	// peer holds its /readyz until it has applied up to this point, so a
	// joiner is never marked ready while it still owes history.
	tailGen, tailRecords := p.CurrentPosition()
	conn.SetWriteDeadline(time.Now().Add(g.cfg.CommitTimeout))
	if err := hrt.WriteReplFrame(w, hrt.ReplFrame{
		Type: hrt.ReplFrameTarget, Gen: tailGen, Index: tailRecords,
	}); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	conn.SetWriteDeadline(time.Time{})

	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_pump_connected",
		obs.Str("peer", peer), obs.Uint("resume_gen", resume.Gen), obs.Int("resume_records", resume.Records))
	// Register at the true resume position: the commit gate must not stall
	// on history the follower already holds, and must not count a joiner
	// as covering positions it has not reached.
	g.tracker.RegisterAt(peer, resume)

	// Ack reader: every ack lifts the peer's tracked position (normalized
	// across sealed generation boundaries), releasing commit waiters. On
	// any read error it closes the connection so the writer side unblocks
	// too.
	seals := newSealTable()
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer conn.Close()
		for {
			f, err := hrt.ReadReplFrame(r)
			if err != nil {
				return
			}
			if f.Type == hrt.ReplFrameAck {
				g.tracker.Ack(peer, seals.normalize(wal.Position{Gen: f.Gen, Records: f.Index}))
			}
		}
	}()
	err = g.streamRecords(conn, w, stopCh, resume, peer, seals)
	conn.Close()
	<-readerDone
	return err
}

// sendSnapshot ships this replica's newest snapshot to a peer whose
// resume position has been pruned. It runs before the ack reader starts,
// so it owns both directions of the connection: offer (SnapBegin with the
// payload's size/CRC/chunking and our current tail), honor the peer's
// resume chunk (a re-offer after a dropped connection restarts at the
// first unstaged chunk, not at zero), stream CRC-prefixed chunks, then
// wait for the final ack that confirms the peer imported and re-journaled
// the payload. Returns the stream resume position (the snapshot's cut),
// whether the transfer happened (false + nil error means the peer said
// "proceed": it already holds a base, stream from oldest retained), and a
// release that unpins the snapshot's generation.
func (g *Group) sendSnapshot(peer string, conn net.Conn, r *bufio.Reader, w *bufio.Writer) (wal.Position, bool, func(), error) {
	p := g.ts.Persist
	snapGen, payload, release, err := p.NewestSnapshot()
	if err != nil {
		if errors.Is(err, hrt.ErrNoSnapshot) {
			// Nothing to ship — we never snapshotted, so our full history is
			// still on disk and plain streaming covers it.
			return wal.Position{}, false, nil, nil
		}
		return wal.Position{}, false, nil, err
	}
	start := time.Now()
	total := int64(len(payload))
	chunk := g.cfg.SnapChunk
	nchunks := (total + int64(chunk) - 1) / int64(chunk)
	sum := crc32.ChecksumIEEE(payload)
	tailGen, tailRecords := p.CurrentPosition()

	// The deadline must not outlive this call on ANY path: the pump's ack
	// reader and record stream share the connection, and a deadline left
	// armed after a declined offer severs that stream CommitTimeout later —
	// on an idle fleet the pump then reconnects (and is declined) forever,
	// so the peer never keeps an announced inbound stream and never goes
	// ready.
	conn.SetDeadline(time.Now().Add(g.cfg.CommitTimeout))
	defer conn.SetDeadline(time.Time{})
	if err := hrt.WriteReplFrame(w, hrt.ReplFrame{
		Type: hrt.ReplFrameSnapBegin, Gen: snapGen,
		Payload: encodeSnapMeta(total, sum, chunk, wal.Position{Gen: tailGen, Records: tailRecords}),
	}); err != nil {
		return wal.Position{}, false, release, err
	}
	if err := w.Flush(); err != nil {
		return wal.Position{}, false, release, err
	}
	f, err := hrt.ReadReplFrame(r)
	if err != nil {
		return wal.Position{}, false, release, err
	}
	startChunk := int64(0)
	switch f.Type {
	case hrt.ReplFrameSnapNack:
		reason := string(f.Payload)
		if len(reason) >= len(hrt.SnapNackProceed) && reason[:len(hrt.SnapNackProceed)] == hrt.SnapNackProceed {
			g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_snap_xfer_declined",
				obs.Str("peer", peer), obs.Str("reason", reason))
			return wal.Position{}, false, release, nil
		}
		return wal.Position{}, false, release, fmt.Errorf("cluster: peer %s declined snapshot transfer: %s", peer, reason)
	case hrt.ReplFrameSnapAck:
		if f.Gen != snapGen || f.Index < 0 || f.Index > nchunks {
			return wal.Position{}, false, release, fmt.Errorf("cluster: bad snapshot resume ack from %s (gen %d, chunk %d)", peer, f.Gen, f.Index)
		}
		startChunk = f.Index
	default:
		return wal.Position{}, false, release, fmt.Errorf("cluster: unexpected frame %d answering snapshot offer", f.Type)
	}
	if startChunk > 0 {
		g.snapResumes.Add(1)
		g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_snap_xfer_resume",
			obs.Str("peer", peer), obs.Int("chunk", startChunk))
	}

	for i := startChunk; i < nchunks; i++ {
		lo := i * int64(chunk)
		hi := lo + int64(chunk)
		if hi > total {
			hi = total
		}
		body := payload[lo:hi]
		framed := make([]byte, 4+len(body))
		binary.LittleEndian.PutUint32(framed[0:4], crc32.ChecksumIEEE(body))
		copy(framed[4:], body)
		conn.SetWriteDeadline(time.Now().Add(g.cfg.CommitTimeout))
		if err := hrt.WriteReplFrame(w, hrt.ReplFrame{
			Type: hrt.ReplFrameSnapChunk, Gen: snapGen, Index: i, Payload: framed,
		}); err != nil {
			return wal.Position{}, false, release, err
		}
		if err := w.Flush(); err != nil {
			return wal.Position{}, false, release, err
		}
		g.snapXferBytes.Add(int64(21 + len(framed)))
	}

	// Drain progress acks until the peer confirms the import (final ack
	// carries the total chunk count). Each read gets a fresh deadline: the
	// peer acks every chunk, and the import itself is bounded by a
	// snapshot write + journal rotation on its side.
	for {
		conn.SetReadDeadline(time.Now().Add(g.cfg.CommitTimeout))
		f, err := hrt.ReadReplFrame(r)
		if err != nil {
			return wal.Position{}, false, release, fmt.Errorf("cluster: snapshot transfer to %s interrupted: %w", peer, err)
		}
		switch f.Type {
		case hrt.ReplFrameSnapNack:
			reason := string(f.Payload)
			if len(reason) >= len(hrt.SnapNackProceed) && reason[:len(hrt.SnapNackProceed)] == hrt.SnapNackProceed {
				// The peer refused the import because it is no longer empty —
				// another sender's snapshot landed first. That base covers our
				// pruned history too (it cut at or beyond it), so plain
				// streaming is safe again.
				return wal.Position{}, false, release, nil
			}
			return wal.Position{}, false, release, fmt.Errorf("cluster: peer %s aborted snapshot transfer: %s", peer, reason)
		case hrt.ReplFrameSnapAck:
			if f.Index >= nchunks {
				g.snapXferNS.Add(time.Since(start).Nanoseconds())
				g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_snap_xfer_sent",
					obs.Str("peer", peer), obs.Uint("gen", snapGen),
					obs.Int("bytes", total), obs.Int("chunks", nchunks-startChunk),
					obs.Dur("took", time.Since(start)))
				return wal.Position{Gen: snapGen, Records: 0}, true, release, nil
			}
		default:
			return wal.Position{}, false, release, fmt.Errorf("cluster: unexpected frame %d during snapshot transfer", f.Type)
		}
	}
}

// streamRecords follows the local journal from resume and ships every
// record beyond it over conn.
func (g *Group) streamRecords(conn net.Conn, w *bufio.Writer, stopCh <-chan struct{}, resume wal.Position, peer string, seals *sealTable) error {
	p := g.ts.Persist
	gen := resume.Gen
	skip := resume.Records
	for {
		opened, count, err := g.streamGeneration(conn, w, stopCh, gen, skip)
		skip = 0
		if err == nil {
			// The generation sealed at count records. Lift an ack that
			// already sits exactly on the boundary (it arrived before the
			// seal count was known) into the next generation's coordinates,
			// and tell the receiver, so it can make the same lift on its
			// applied position — without it, a catch-up target announced as
			// (G, 0) right after a rotation is unreachable for a receiver
			// sitting on (G-1, count) when no further records flow.
			seals.seal(gen, count)
			g.tracker.Ack(peer, seals.normalize(g.tracker.Acked(peer)))
			if !g.ackFrame(conn, w, hrt.ReplFrame{Type: hrt.ReplFrameSeal, Gen: gen, Index: count}) {
				return errors.New("cluster: seal announcement failed")
			}
			gen++
			continue
		}
		if opened {
			return err
		}
		// The generation's journal could not be opened — pruned by a
		// snapshot while this pump was behind, or rotated into existence
		// concurrently. Jump to the oldest retained generation beyond it;
		// the receiver's replay high-water marks absorb any overlap, and
		// the receiver necessarily holds a base at or beyond the pruning
		// snapshot's cut (it reached this generation through streaming or
		// import), so no gap opens.
		gens, lerr := p.Generations()
		if lerr != nil {
			return lerr
		}
		next, found := uint64(0), false
		for _, gn := range gens {
			if gn > gen {
				next, found = gn, true
				break
			}
		}
		if !found {
			if curGen, _ := p.CurrentPosition(); curGen > gen {
				gen = curGen
				continue
			}
			return err
		}
		gen = next
	}
}

// streamGeneration streams generation gen until it is sealed by a journal
// rotation, then returns nil (plus the generation's final record count)
// so the caller advances to gen+1. The first `skip` records are read but
// not sent (the peer already applied them — its resume position within
// this generation). The generation is pinned against pruning for the
// duration: a snapshot landing mid-stream must not delete the file under
// our tail scanner. The first result reports whether the generation's
// journal file could be opened.
func (g *Group) streamGeneration(conn net.Conn, w *bufio.Writer, stopCh <-chan struct{}, gen uint64, skip int64) (bool, int64, error) {
	p := g.ts.Persist
	unpin := p.PinGeneration(gen)
	defer unpin()
	tail, err := wal.OpenTail(p.JournalFile(gen), 0)
	if err != nil {
		return false, 0, err
	}
	defer tail.Close()
	var idx int64
	sealed := false
	for {
		// Acquire the notification channel before reading: an append that
		// lands between the read and the wait closes this channel, so the
		// wakeup cannot be lost.
		notify := p.AppendNotify()
		payload, err := tail.Next()
		if err == nil {
			idx++
			if idx <= skip {
				continue
			}
			if serr := g.sendRecord(conn, w, gen, idx, payload); serr != nil {
				return true, idx, serr
			}
			continue
		}
		if err != wal.ErrTailCaughtUp {
			return true, idx, err
		}
		if sealed {
			// Rotation was observed on a previous pass, so the file was
			// already final before this read: the generation is complete.
			return true, idx, nil
		}
		if curGen, _ := p.CurrentPosition(); curGen > gen {
			// Rotation commits under the write quiesce, after every append
			// to the old generation — but some of those appends may have
			// landed after our caught-up read. One more pass drains them.
			sealed = true
			continue
		}
		select {
		case <-notify:
		case <-g.stop:
			return true, idx, errors.New("cluster: group closed")
		case <-stopCh:
			return true, idx, errors.New("cluster: pump stopped")
		case <-time.After(500 * time.Millisecond):
			// Paranoia poll: nothing should be lost given the
			// acquire-before-read protocol, but a cheap re-check beats a
			// wedged fleet if that invariant ever breaks.
		}
	}
}

func (g *Group) sendRecord(conn net.Conn, w *bufio.Writer, gen uint64, idx int64, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(g.cfg.CommitTimeout))
	f := hrt.ReplFrame{Type: hrt.ReplFrameRecord, Gen: gen, Index: idx, Payload: payload}
	if err := hrt.WriteReplFrame(w, f); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	g.replBytes.Add(int64(21 + len(payload)))
	return nil
}

// ---------------------------------------------------------------------------
// Inbound side

// replResume implements hrt.TCPServer.ReplResume: the newest position
// this replica has applied from sender, handed back in the OpRepl
// handshake so a reconnecting pump resumes where it left off instead of
// re-streaming history.
func (g *Group) replResume(sender string) (uint64, int64) {
	g.recvMu.Lock()
	defer g.recvMu.Unlock()
	pos := g.recvPos[sender]
	return pos.Gen, pos.Records
}

// handleRepl implements hrt.TCPServer.ReplHandler: it owns a connection a
// peer switched into replication mode, applying each record frame to the
// local server and acknowledging it. Snapshot-transfer frames run the
// receiving half of the catch-up protocol. An apply error stops the acks
// and drops the stream — the primary will reconnect and re-stream, and if
// the error is persistent this replica's lag (and its /readyz) make the
// damage visible instead of silently diverging.
func (g *Group) handleRepl(conn net.Conn, r *bufio.Reader, sender string) {
	if sender == "" {
		sender = conn.RemoteAddr().String()
	}
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_repl_stream_open", obs.Str("peer", sender))
	g.recvMu.Lock()
	g.recvActive[sender]++
	g.recvMu.Unlock()
	announced := false
	defer func() {
		g.recvMu.Lock()
		if g.recvActive[sender]--; g.recvActive[sender] <= 0 {
			delete(g.recvActive, sender)
		}
		if announced && g.recvAnnounced[sender] > 0 {
			if g.recvAnnounced[sender]--; g.recvAnnounced[sender] == 0 {
				delete(g.recvAnnounced, sender)
			}
		}
		g.recvMu.Unlock()
	}()
	w := bufio.NewWriter(conn)
	// Seal announcements from this sender; applied positions are lifted
	// through sealed boundaries so they stay comparable with targets the
	// sender states in new-generation coordinates.
	seals := newSealTable()
	for {
		f, err := hrt.ReadReplFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_repl_stream_error",
					obs.Str("peer", sender), obs.Err(err))
			}
			return
		}
		switch f.Type {
		case hrt.ReplFrameRecord:
			g.replReceived.Add(1)
			if err := g.ts.ApplyReplicated(f.Payload); err != nil {
				g.cfg.Tracer.Emit(obs.LevelError, "cluster_repl_apply_error",
					obs.Str("peer", sender), obs.Err(err))
				return
			}
			g.replApplied.Add(1)
			g.replBytes.Add(int64(21 + len(f.Payload)))
			g.recvMu.Lock()
			g.recvPos[sender] = seals.normalize(wal.Position{Gen: f.Gen, Records: f.Index})
			g.recvMu.Unlock()
			if !g.ackFrame(conn, w, hrt.ReplFrame{Type: hrt.ReplFrameAck, Gen: f.Gen, Index: f.Index}) {
				return
			}
		case hrt.ReplFrameSeal:
			// The sender's generation f.Gen ended at f.Index records. Lift
			// our applied position across the boundary; catchingUp compares
			// it against the announced target, and without the lift a target
			// of (G, 0) wedges readiness when the corpus stops right at the
			// rotation.
			seals.seal(f.Gen, f.Index)
			g.recvMu.Lock()
			g.recvPos[sender] = seals.normalize(g.recvPos[sender])
			g.recvMu.Unlock()
		case hrt.ReplFrameTarget:
			pos := wal.Position{Gen: f.Gen, Records: f.Index}
			g.recvMu.Lock()
			if g.recvPos[sender].Before(pos) {
				g.targets[sender] = pos
			} else {
				delete(g.targets, sender)
			}
			// The sender has told us where its journal stands: this stream
			// now counts toward the inbound-side readiness requirement.
			if !announced {
				announced = true
				g.recvAnnounced[sender]++
			}
			g.recvMu.Unlock()
		case hrt.ReplFrameSnapBegin:
			if !g.recvSnapBegin(conn, w, sender, f) {
				return
			}
		case hrt.ReplFrameSnapChunk:
			if !g.recvSnapChunk(conn, w, sender, f) {
				return
			}
		default:
			// Acks and unknown-but-valid frames are sender-side traffic;
			// ignore them on the inbound stream.
		}
	}
}

// ackFrame writes one frame back to the sender; false means the stream
// should be dropped.
func (g *Group) ackFrame(conn net.Conn, w *bufio.Writer, f hrt.ReplFrame) bool {
	conn.SetWriteDeadline(time.Now().Add(g.cfg.CommitTimeout))
	if err := hrt.WriteReplFrame(w, f); err != nil {
		return false
	}
	return w.Flush() == nil
}

// recvSnapBegin answers a snapshot offer: refuse with "proceed" when this
// replica already holds state (the sender then streams records instead),
// refuse with "retry" when a different sender's transfer is mid-flight on
// a live stream, resume a matching interrupted transfer at its staged
// chunk count, or accept a fresh one at chunk zero. False drops the
// stream (protocol error).
func (g *Group) recvSnapBegin(conn net.Conn, w *bufio.Writer, sender string, f hrt.ReplFrame) bool {
	total, sum, chunk, tail, err := decodeSnapMeta(f.Payload)
	if err != nil {
		g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_snap_xfer_bad_offer",
			obs.Str("peer", sender), obs.Err(err))
		return false
	}
	if !g.ts.StateEmpty() {
		return g.ackFrame(conn, w, hrt.ReplFrame{
			Type: hrt.ReplFrameSnapNack, Gen: f.Gen,
			Payload: []byte(hrt.SnapNackProceed + ": state not empty"),
		})
	}
	g.recvMu.Lock()
	if st := g.stage; st != nil && st.sender != sender {
		if g.recvActive[st.sender] > 0 {
			g.recvMu.Unlock()
			return g.ackFrame(conn, w, hrt.ReplFrame{
				Type: hrt.ReplFrameSnapNack, Gen: f.Gen,
				Payload: []byte(hrt.SnapNackRetry + ": transfer from " + st.sender + " in progress"),
			})
		}
		// The staging sender's stream died; its partial transfer is stale.
		g.stage = nil
	}
	startChunk := int64(0)
	if st := g.stage; st != nil {
		if st.gen == f.Gen && st.total == total && st.crc == sum && st.chunk == chunk {
			startChunk = st.chunks
			if startChunk > 0 {
				g.snapResumes.Add(1)
			}
		} else {
			// Same sender, different snapshot (it rotated since): restart.
			g.stage = nil
		}
	}
	if g.stage == nil {
		g.stage = &snapStage{
			sender: sender, gen: f.Gen, total: total, crc: sum, chunk: chunk,
			tail: tail, buf: make([]byte, 0, total), start: time.Now(),
		}
	}
	g.stage.tail = tail
	g.recvMu.Unlock()
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_snap_xfer_begin",
		obs.Str("peer", sender), obs.Uint("gen", f.Gen),
		obs.Int("bytes", total), obs.Int("resume_chunk", startChunk))
	return g.ackFrame(conn, w, hrt.ReplFrame{Type: hrt.ReplFrameSnapAck, Gen: f.Gen, Index: startChunk})
}

// recvSnapChunk stages one transfer chunk; on the final chunk it verifies
// the whole payload, imports it as this replica's state base, re-journals
// it, and confirms with the final ack. False drops the stream.
func (g *Group) recvSnapChunk(conn net.Conn, w *bufio.Writer, sender string, f hrt.ReplFrame) bool {
	g.recvMu.Lock()
	st := g.stage
	if st == nil || st.sender != sender || st.gen != f.Gen || st.chunks != f.Index {
		g.recvMu.Unlock()
		g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_snap_xfer_bad_chunk",
			obs.Str("peer", sender), obs.Uint("gen", f.Gen), obs.Int("chunk", f.Index))
		return false
	}
	if len(f.Payload) < 4 {
		g.recvMu.Unlock()
		return false
	}
	body := f.Payload[4:]
	want := st.total - int64(len(st.buf))
	if want > int64(st.chunk) {
		want = int64(st.chunk)
	}
	if int64(len(body)) != want || crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(f.Payload[0:4]) {
		g.recvMu.Unlock()
		g.cfg.Tracer.Emit(obs.LevelWarn, "cluster_snap_xfer_bad_chunk",
			obs.Str("peer", sender), obs.Uint("gen", f.Gen), obs.Int("chunk", f.Index))
		return false
	}
	st.buf = append(st.buf, body...)
	st.chunks++
	g.snapXferBytes.Add(int64(21 + len(f.Payload)))
	// Capture everything needed past this point while the lock is held —
	// a racing re-offer from the same sender may swap the stage out.
	snap := *st
	complete := int64(len(st.buf)) == st.total
	g.recvMu.Unlock()

	if !complete {
		return g.ackFrame(conn, w, hrt.ReplFrame{Type: hrt.ReplFrameSnapAck, Gen: f.Gen, Index: snap.chunks})
	}

	// All chunks staged: verify and import. The stage stays set during the
	// import so readiness keeps reporting the transfer, and is cleared on
	// every outcome below.
	if crc32.ChecksumIEEE(snap.buf) != snap.crc {
		g.clearStage()
		g.cfg.Tracer.Emit(obs.LevelError, "cluster_snap_xfer_corrupt",
			obs.Str("peer", sender), obs.Uint("gen", snap.gen))
		return false
	}
	err := g.ts.ImportCatchupSnapshot(snap.buf)
	if errors.Is(err, hrt.ErrNotEmpty) {
		// Another sender's base landed between our emptiness check and the
		// import. That base covers this transfer's history too; tell the
		// sender to stream instead.
		g.clearStage()
		return g.ackFrame(conn, w, hrt.ReplFrame{
			Type: hrt.ReplFrameSnapNack, Gen: snap.gen,
			Payload: []byte(hrt.SnapNackProceed + ": state no longer empty"),
		})
	}
	if err != nil {
		g.clearStage()
		g.cfg.Tracer.Emit(obs.LevelError, "cluster_snap_import_error",
			obs.Str("peer", sender), obs.Err(err))
		return false
	}
	g.recvMu.Lock()
	g.recvPos[sender] = wal.Position{Gen: snap.gen, Records: 0}
	if (wal.Position{Gen: snap.gen, Records: 0}).Before(snap.tail) {
		g.targets[sender] = snap.tail
	}
	g.stage = nil
	g.recvMu.Unlock()
	g.snapXferNS.Add(time.Since(snap.start).Nanoseconds())
	g.cfg.Tracer.Emit(obs.LevelInfo, "cluster_snap_imported",
		obs.Str("peer", sender), obs.Uint("gen", snap.gen),
		obs.Int("bytes", snap.total), obs.Dur("took", time.Since(snap.start)))
	return g.ackFrame(conn, w, hrt.ReplFrame{Type: hrt.ReplFrameSnapAck, Gen: snap.gen, Index: snap.nchunks()})
}

func (g *Group) clearStage() {
	g.recvMu.Lock()
	g.stage = nil
	g.recvMu.Unlock()
}

// ---------------------------------------------------------------------------
// Client-side resolution

// SessionResolver returns a resolver for hrt.ReconnectConfig: it ranks the
// fleet by the session's rendezvous order and returns the first replica
// that accepts a TCP connection — which is exactly the replica the fleet's
// own routers consider the session's live owner, so the redirected (or
// reconnecting) client and the servers converge on the same home.
func SessionResolver(peers []string, session uint64, dialTimeout time.Duration) func() (string, error) {
	if dialTimeout <= 0 {
		dialTimeout = 500 * time.Millisecond
	}
	rank := Rank(session, peers)
	return func() (string, error) {
		for _, addr := range rank {
			conn, err := net.DialTimeout("tcp", addr, dialTimeout)
			if err == nil {
				conn.Close()
				return addr, nil
			}
		}
		return "", fmt.Errorf("cluster: no live replica for session %d among %v", session, rank)
	}
}
