package cluster

// In-process catch-up tests: a sender replica that has already pruned its
// oldest generations must bring an empty joiner up via a chunked snapshot
// transfer, and the transfer must survive the two ugly interruptions —
// a severed link mid-transfer (resume from the staged chunks) and a dead
// receiver mid-transfer (fresh transfer after restart on the same data
// dir). The joiner's fleet identity is a stalling TCP proxy, so the tests
// can freeze the byte stream at a chosen point without cooperation from
// either endpoint.

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"slicehide/internal/core"
	"slicehide/internal/hrt"
	"slicehide/internal/interp"
	"slicehide/internal/ir"
	"slicehide/internal/obs"
	"slicehide/internal/slicer"
)

const catchupSrc = `
func f(x: int): int {
    var a: int = x;
    a = a + 100;
    return a;
}
func main() { print(f(1)); }
`

func catchupSplit(t *testing.T) (*core.Result, int) {
	t.Helper()
	prog, err := ir.Compile(catchupSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.SplitProgram(prog, []core.Spec{{Func: "f", Seed: "a"}}, slicer.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	initFrag := -1
	for _, id := range res.Splits["f"].Hidden.FragIDs() {
		if res.Splits["f"].Hidden.Frags[id].Kind == core.FragExec {
			initFrag = id
			break
		}
	}
	if initFrag < 0 {
		t.Fatal("no exec fragment in split")
	}
	return res, initFrag
}

// stallProxy is a TCP forwarder that, while armed, lets each inbound
// connection deliver only budget bytes toward the backend before freezing
// — the snapshot transfer's bytes flow sender→receiver, so the freeze
// catches a transfer mid-chunk while short gossip exchanges fit under the
// budget and keep flowing. disarm unfreezes the world: current
// connections are severed, future ones forward unlimited.
type stallProxy struct {
	ln net.Listener

	mu      sync.Mutex
	backend string
	budget  int64 // per-conn sender→backend byte budget; <0 forwards all
	conns   map[net.Conn]struct{}
	release chan struct{}
	severed bool
}

func newStallProxy(t *testing.T, backend string, budget int64) *stallProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stallProxy{
		ln:      ln,
		backend: backend,
		budget:  budget,
		conns:   make(map[net.Conn]struct{}),
		release: make(chan struct{}),
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go p.serve(c)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		p.disarm()
	})
	return p
}

func (p *stallProxy) addr() string { return p.ln.Addr().String() }

func (p *stallProxy) setBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

// disarm severs every in-flight connection and lets future ones forward
// without a budget. Idempotent.
func (p *stallProxy) disarm() {
	p.mu.Lock()
	if p.severed {
		p.mu.Unlock()
		return
	}
	p.severed = true
	p.budget = -1
	for c := range p.conns {
		c.Close()
	}
	close(p.release)
	p.mu.Unlock()
}

func (p *stallProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *stallProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *stallProxy) serve(client net.Conn) {
	p.mu.Lock()
	backend := p.backend
	budget := p.budget
	release := p.release
	p.mu.Unlock()
	up, err := net.DialTimeout("tcp", backend, time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.track(client)
	p.track(up)
	defer p.untrack(client)
	defer p.untrack(up)
	done := make(chan struct{})
	go func() {
		io.Copy(client, up)
		client.Close()
		up.Close()
		close(done)
	}()
	if budget < 0 {
		io.Copy(up, client)
	} else {
		io.CopyN(up, client, budget)
		// Frozen: hold the stream until the test disarms the proxy, then
		// fall through — the connections are already severed by then.
		<-release
		io.Copy(up, client)
	}
	client.Close()
	up.Close()
	<-done
}

// catchupReplica is one in-process fleet member: a durable TCP server with
// its group wired in, the same assembly the daemon performs.
type catchupReplica struct {
	ts *hrt.TCPServer
	g  *Group
}

// startCatchupReplica boots a replica listening on listen whose fleet
// identity is cfg.Self (they differ for the proxied joiner).
func startCatchupReplica(t *testing.T, res *core.Result, dir, listen string, cfg Config) *catchupReplica {
	t.Helper()
	tracer := obs.NewTracer(obs.TracerConfig{Level: obs.LevelDebug})
	cfg.Tracer = tracer
	cfg.Replicate = true
	cfg.MembershipPath = MembershipPath(dir)
	if cfg.SnapChunk == 0 {
		cfg.SnapChunk = 64
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 250 * time.Millisecond
	}
	if cfg.CommitTimeout == 0 {
		cfg.CommitTimeout = time.Second
	}
	ts := &hrt.TCPServer{
		Server: hrt.NewServer(hrt.NewRegistry(res)),
		Tracer: tracer,
		Persist: hrt.NewDurability(hrt.DurabilityOptions{
			Dir:           dir,
			SnapshotEvery: 4,
			Tracer:        tracer,
		}),
	}
	g, err := New(cfg, ts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ts.ListenAndServe(listen); err != nil {
		t.Fatal(err)
	}
	g.Start()
	return &catchupReplica{ts: ts, g: g}
}

func (r *catchupReplica) stop() {
	r.g.Close()
	r.ts.Close()
}

// prunedPastGenesis reports whether every listed durability layer has
// rotated past (and pruned) generation 0 — the precondition for catch-up:
// a joiner asking for (0,0) can no longer be served by journal streaming
// alone.
func prunedPastGenesis(layers ...*hrt.Durability) func() bool {
	return func() bool {
		for _, p := range layers {
			gens, err := p.Generations()
			if err != nil || len(gens) == 0 || gens[0] == 0 {
				return false
			}
		}
		return true
	}
}

// driveCorpus appends records on the replica at addr until pruned reports
// true (see prunedPastGenesis). Calls are paced: rotation is only checked
// on request arrival and is suppressed while the previous background
// snapshot is still landing, so a burst of records produces one rotation,
// not one per SnapshotEvery.
func driveCorpus(t *testing.T, res *core.Result, addrFor func(session uint64) string, initFrag int, pruned func() bool) {
	t.Helper()
	policy := hrt.RetryPolicy{Retries: 40, BackoffBase: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond}
	for s := 1; s <= 30; s++ {
		rt, err := hrt.DialReconnect(hrt.ReconnectConfig{
			Addr:    addrFor(uint64(1000 + s)),
			Session: uint64(1000 + s),
			Timeout: 2 * time.Second,
			Policy:  policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		sess := &hrt.Session{T: rt}
		inst, err := sess.Enter("f", 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if _, err := sess.Call("f", inst, initFrag, []interp.Value{interp.IntV(int64(s*100 + i))}); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		rt.Close()
		if s >= 3 && pruned() {
			return
		}
	}
	if !pruned() {
		t.Fatal("generation 0 never pruned despite 30 sessions of traffic")
	}
}

// waitUntil polls cond until it returns true or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// stageDepth reports how many snapshot chunks the group has staged, or -1
// with no transfer in progress.
func stageDepth(g *Group) int64 {
	g.recvMu.Lock()
	defer g.recvMu.Unlock()
	if g.stage == nil {
		return -1
	}
	return g.stage.chunks
}

// TestCatchupTransferResumesAfterSever freezes the snapshot transfer to a
// joiner mid-chunk, severs the link, and requires the sender's reconnect
// to resume from the joiner's staged chunks — not restart from chunk zero
// — then converge to identical state with the joiner ready.
func TestCatchupTransferResumesAfterSever(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica catch-up harness")
	}
	res, initFrag := catchupSplit(t)
	senderAddr := deadAddr(t)
	sender := startCatchupReplica(t, res, t.TempDir(), senderAddr, Config{
		Self:  senderAddr,
		Peers: []string{senderAddr},
	})
	defer sender.stop()
	driveCorpus(t, res, func(uint64) string { return senderAddr }, initFrag, prunedPastGenesis(sender.ts.Persist))
	senderStats := sender.ts.Server.Stats()

	// The joiner's fleet identity is the proxy; its server hides behind it.
	// 300 bytes lets the stream handshake and the first chunks through,
	// then freezes mid-transfer.
	joinerListen := deadAddr(t)
	proxy := newStallProxy(t, joinerListen, 300)
	res2, _ := catchupSplit(t)
	joiner := startCatchupReplica(t, res2, t.TempDir(), joinerListen, Config{
		Self:     proxy.addr(),
		JoinSeed: senderAddr,
	})
	defer joiner.stop()

	// The transfer must reach the joiner and freeze with a partial stage.
	waitUntil(t, 10*time.Second, "a partial snapshot stage on the joiner", func() bool {
		return stageDepth(joiner.g) >= 0
	})
	if ready, reason := joiner.g.Ready(); ready || !strings.Contains(reason, "snapshot transfer") {
		t.Errorf("joiner mid-transfer: ready=%v reason=%q, want snapshot-transfer readiness hold", ready, reason)
	}

	// Sever the frozen link. The sender reconnects, the joiner offers its
	// staged chunk count, and the transfer resumes rather than restarting.
	proxy.disarm()
	waitUntil(t, 20*time.Second, "the joiner to become ready", func() bool {
		ready, _ := joiner.g.Ready()
		return ready
	})
	if got := joiner.g.snapResumes.Load(); got < 1 {
		t.Errorf("snap_xfer_resumes = %d, want >= 1 (transfer restarted from scratch?)", got)
	}
	if got := joiner.g.SnapXferBytes(); got <= 0 {
		t.Errorf("snap_xfer_bytes = %d on the joiner, want > 0", got)
	}
	if got := sender.g.SnapXferBytes(); got <= 0 {
		t.Errorf("snap_xfer_bytes = %d on the sender, want > 0", got)
	}
	waitUntil(t, 10*time.Second, "joiner stats to match the sender", func() bool {
		return joiner.ts.Server.Stats() == senderStats
	})
	if got, want := joiner.g.Epoch(), uint64(2); got < want {
		t.Errorf("joiner epoch %d, want >= %d", got, want)
	}
}

// TestCatchupTransferRestartAfterReceiverDeath kills the joiner while a
// transfer is frozen half-received and restarts it on the same data dir:
// the staged chunks (memory only) are gone, a fresh transfer must run to
// completion, and the joiner must never have reported ready while it held
// partial state.
func TestCatchupTransferRestartAfterReceiverDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica catch-up harness")
	}
	res, initFrag := catchupSplit(t)
	senderAddr := deadAddr(t)
	sender := startCatchupReplica(t, res, t.TempDir(), senderAddr, Config{
		Self:  senderAddr,
		Peers: []string{senderAddr},
	})
	defer sender.stop()
	driveCorpus(t, res, func(uint64) string { return senderAddr }, initFrag, prunedPastGenesis(sender.ts.Persist))
	senderStats := sender.ts.Server.Stats()

	joinerDir := t.TempDir()
	joinerListen := deadAddr(t)
	proxy := newStallProxy(t, joinerListen, 300)
	res2, _ := catchupSplit(t)
	joiner := startCatchupReplica(t, res2, joinerDir, joinerListen, Config{
		Self:     proxy.addr(),
		JoinSeed: senderAddr,
	})
	waitUntil(t, 10*time.Second, "a partial snapshot stage on the joiner", func() bool {
		return stageDepth(joiner.g) >= 0
	})
	if ready, _ := joiner.g.Ready(); ready {
		t.Error("joiner reported ready while a snapshot transfer was half-received")
	}

	// Kill the joiner with the transfer frozen: the staged chunks die with
	// the process; the journal has adopted nothing.
	joiner.stop()
	proxy.disarm()

	// Restart on the same data dir behind the same fleet identity. The
	// persisted membership already includes the joiner, so it needs no
	// second admission round.
	res3, _ := catchupSplit(t)
	joinerListen2 := deadAddr(t)
	proxy.setBackend(joinerListen2)
	joiner2 := startCatchupReplica(t, res3, joinerDir, joinerListen2, Config{
		Self:     proxy.addr(),
		JoinSeed: senderAddr,
	})
	defer joiner2.stop()

	waitUntil(t, 20*time.Second, "the restarted joiner to become ready", func() bool {
		ready, _ := joiner2.g.Ready()
		return ready
	})
	if got := joiner2.g.SnapXferBytes(); got <= 0 {
		t.Errorf("snap_xfer_bytes = %d on the restarted joiner, want > 0 (fresh transfer)", got)
	}
	waitUntil(t, 10*time.Second, "restarted joiner stats to match the sender", func() bool {
		return joiner2.ts.Server.Stats() == senderStats
	})
	if m := joiner2.g.Membership(); !m.Has(proxy.addr()) || !m.Has(senderAddr) {
		t.Errorf("restarted joiner membership %s missing a member", m.Encode())
	}
}

// TestDeclinedOfferLeavesStreamHealthy joins a cold replica to a
// TWO-founder fleet whose founders have both pruned generation 0: one
// founder's snapshot transfer wins, the other's offer is declined with
// "proceed" because the joiner is no longer empty. Regression: the
// declined sender left its snapshot-offer connection deadline armed, so
// its (announced) stream to the joiner was severed CommitTimeout later —
// and on an idle fleet the pump, blocked waiting for records to stream,
// never noticed and never reconnected, wedging the joiner's readiness
// forever. Once ready, the joiner must STAY ready across several
// CommitTimeouts of idleness.
func TestDeclinedOfferLeavesStreamHealthy(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica catch-up harness")
	}
	const commitTimeout = 500 * time.Millisecond
	res, initFrag := catchupSplit(t)
	founders := []string{deadAddr(t), deadAddr(t)}
	resB, _ := catchupSplit(t)
	a := startCatchupReplica(t, res, t.TempDir(), founders[0], Config{
		Self: founders[0], Peers: founders, CommitTimeout: commitTimeout,
	})
	defer a.stop()
	b := startCatchupReplica(t, resB, t.TempDir(), founders[1], Config{
		Self: founders[1], Peers: founders, CommitTimeout: commitTimeout,
	})
	defer b.stop()
	// Both founders must prune genesis: the losing founder then cannot
	// serve the joiner by journal streaming, so its offer-and-decline
	// exchange — the poisoned path — is guaranteed to run. Each session
	// dials its rendezvous owner; full-mesh streaming rotates both
	// journals regardless of where a record executed.
	driveCorpus(t, res, func(session uint64) string {
		return Owner(session, founders)
	}, initFrag, prunedPastGenesis(a.ts.Persist, b.ts.Persist))
	stats := a.ts.Server.Stats()

	resJ, _ := catchupSplit(t)
	joinerAddr := deadAddr(t)
	joiner := startCatchupReplica(t, resJ, t.TempDir(), joinerAddr, Config{
		Self: joinerAddr, JoinSeed: founders[0], CommitTimeout: commitTimeout,
	})
	defer joiner.stop()

	waitUntil(t, 20*time.Second, "the joiner to become ready", func() bool {
		ready, _ := joiner.g.Ready()
		return ready
	})
	if got := joiner.g.SnapXferBytes(); got <= 0 {
		t.Errorf("snap_xfer_bytes = %d on the joiner, want > 0", got)
	}
	waitUntil(t, 10*time.Second, "joiner stats to match the founders", func() bool {
		return joiner.ts.Server.Stats() == stats
	})

	// The fleet is idle from here on: no records flow, so a stream severed
	// by a stale deadline is never re-established. Readiness must hold
	// without a flap for several CommitTimeouts.
	deadline := time.Now().Add(4 * commitTimeout)
	for time.Now().Before(deadline) {
		if ready, reason := joiner.g.Ready(); !ready {
			t.Fatalf("joiner readiness flapped on an idle fleet: %s", reason)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
