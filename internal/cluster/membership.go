package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Membership is the fleet's epoch-versioned member table. Every replica
// carries one and gossips it over the liveness probes; the table with the
// highest epoch wins everywhere, so a join or leave initiated on any one
// member converges across the fleet within a few probe intervals — no
// restart, no coordinator. Epochs are bumped only by explicit Join/Leave
// mutations, never by probe outcomes: a dead member stays a member (its
// sessions fail over but its slot is kept) until an operator removes it.
type Membership struct {
	// Epoch orders tables: higher supersedes lower fleet-wide.
	Epoch uint64
	// Members is the sorted, deduplicated list of replica addresses.
	Members []string
}

// membershipMaxMembers bounds how many members a gossiped table may carry,
// so a malformed frame cannot make a replica over-allocate.
const membershipMaxMembers = 1024

// NewMembership builds an epoch-1 table from the given member list.
func NewMembership(members []string) Membership {
	m := Membership{Epoch: 1, Members: normalizeMembers(members)}
	return m
}

func normalizeMembers(members []string) []string {
	out := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, a := range members {
		a = strings.TrimSpace(a)
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Has reports whether addr is a member.
func (m Membership) Has(addr string) bool {
	for _, a := range m.Members {
		if a == addr {
			return true
		}
	}
	return false
}

// Others returns the members other than self.
func (m Membership) Others(self string) []string {
	out := make([]string, 0, len(m.Members))
	for _, a := range m.Members {
		if a != self {
			out = append(out, a)
		}
	}
	return out
}

// Clone returns a deep copy.
func (m Membership) Clone() Membership {
	return Membership{Epoch: m.Epoch, Members: append([]string(nil), m.Members...)}
}

// Encode renders the table canonically: "<epoch>|addr1,addr2,...". The
// rendering doubles as the gossip wire form, the persistence format, and
// the equal-epoch tiebreak key.
func (m Membership) Encode() string {
	return strconv.FormatUint(m.Epoch, 10) + "|" + strings.Join(m.Members, ",")
}

// ParseMembership decodes an Encode rendering.
func ParseMembership(s string) (Membership, error) {
	epochStr, list, ok := strings.Cut(strings.TrimSpace(s), "|")
	if !ok {
		return Membership{}, fmt.Errorf("cluster: malformed membership %q", s)
	}
	epoch, err := strconv.ParseUint(epochStr, 10, 64)
	if err != nil {
		return Membership{}, fmt.Errorf("cluster: malformed membership epoch %q", epochStr)
	}
	var members []string
	if list != "" {
		members = strings.Split(list, ",")
		if len(members) > membershipMaxMembers {
			return Membership{}, fmt.Errorf("cluster: membership lists %d members (limit %d)", len(members), membershipMaxMembers)
		}
	}
	return Membership{Epoch: epoch, Members: normalizeMembers(members)}, nil
}

// Supersedes reports whether m should replace o: a strictly higher epoch
// always wins, and tables that raced to the same epoch are broken
// deterministically by the greater canonical rendering, so every replica
// that sees both candidates picks the same one.
func (m Membership) Supersedes(o Membership) bool {
	if m.Epoch != o.Epoch {
		return m.Epoch > o.Epoch
	}
	return m.Encode() > o.Encode()
}

// WithJoined returns the table with addr added and the epoch bumped; the
// second result is false (and the receiver unchanged) when addr was
// already a member.
func (m Membership) WithJoined(addr string) (Membership, bool) {
	addr = strings.TrimSpace(addr)
	if addr == "" || strings.ContainsAny(addr, ",|") || m.Has(addr) {
		return m, false
	}
	n := m.Clone()
	n.Epoch++
	n.Members = normalizeMembers(append(n.Members, addr))
	return n, true
}

// WithLeft returns the table with addr removed and the epoch bumped; the
// second result is false when addr was not a member.
func (m Membership) WithLeft(addr string) (Membership, bool) {
	if !m.Has(addr) {
		return m, false
	}
	n := Membership{Epoch: m.Epoch + 1}
	for _, a := range m.Members {
		if a != addr {
			n.Members = append(n.Members, a)
		}
	}
	return n, true
}

// LoadMembership reads a table persisted by Save; ok is false when the
// file is missing or unreadable (boot falls back to the configured list).
func LoadMembership(path string) (Membership, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Membership{}, false
	}
	m, err := ParseMembership(string(b))
	if err != nil {
		return Membership{}, false
	}
	return m, true
}

// Save persists the table atomically (write-temp-then-rename), so a crash
// mid-write leaves either the old table or the new one, never a torn file.
func (m Membership) Save(path string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(m.Encode()+"\n"), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// MembershipPath returns the file a replica persists its member table to
// inside its data directory.
func MembershipPath(dataDir string) string {
	return filepath.Join(dataDir, "membership")
}
