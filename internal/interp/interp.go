package interp

import (
	"fmt"
	"io"
	"strings"

	"slicehide/internal/ir"
	"slicehide/internal/lang/ast"
	"slicehide/internal/lang/token"
	"slicehide/internal/lang/types"
)

// RuntimeError is an error raised during execution, with the source position
// of the failing statement when available.
type RuntimeError struct {
	Pos token.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.Valid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

// HiddenSession is implemented by the split runtime (package hrt); the
// interpreter calls it whenever an open component enters, exits, or invokes
// the hidden part of a split function.
type HiddenSession interface {
	// Enter opens a hidden activation for the split function fn and
	// returns its instance id. obj is the receiver's instance id for
	// methods of classes with hidden fields (0 otherwise).
	Enter(fn string, obj int64) (int64, error)
	// Exit closes the hidden activation.
	Exit(fn string, inst int64) error
	// Call executes hidden fragment frag of fn under instance inst.
	Call(fn string, inst int64, frag int, args []Value) (Value, error)
}

// AsyncHiddenSession is the pipelined variant of HiddenSession: reply-free
// operations are sent one-way into an ordered in-flight window instead of
// blocking for a round trip, and Barrier flushes the window. An
// implementation must preserve program order — a reply-bearing Call
// observes the effects of every earlier one-way operation — and must
// surface a one-way operation's error no later than the next Barrier or
// reply-bearing Call.
//
// The interpreter uses the async contract automatically when
// Options.Hidden implements it: Enter/Exit/non-leaking fragment calls go
// one-way, and a Barrier runs before every print statement and at the end
// of Run, so program output stays byte-identical to the synchronous
// execution (including which outputs an error suppresses).
type AsyncHiddenSession interface {
	HiddenSession
	// EnterAsync opens a hidden activation one-way, returning a
	// client-assigned instance id immediately.
	EnterAsync(fn string, obj int64) (int64, error)
	// ExitAsync closes the activation one-way.
	ExitAsync(fn string, inst int64) error
	// CallOneWay executes a reply-free hidden fragment without waiting.
	CallOneWay(fn string, inst int64, frag int, args []Value) error
	// Barrier blocks until every one-way operation has executed,
	// surfacing the first deferred error.
	Barrier() error
}

// Tracer observes the interpreter's split-runtime events: split-function
// activations opening and closing, and hidden fragment calls.
// Implementations must be cheap and must never record hidden values —
// the hooks deliberately expose only structure (names, ids, fragment
// numbers), which the open machine can observe anyway. Package hrt
// bridges this to the obs structured tracer.
type Tracer interface {
	// FragEnter fires after a split function's hidden activation opens.
	FragEnter(fn string, inst int64)
	// FragExit fires when the activation closes.
	FragExit(fn string, inst int64)
	// HiddenCall fires before each hidden fragment invocation; oneWay
	// reports whether the call is dispatched reply-free.
	HiddenCall(fn string, inst int64, frag int, oneWay bool)
}

// Options configures an interpreter.
type Options struct {
	// Out receives program output (print statements). Defaults to io.Discard.
	Out io.Writer
	// MaxSteps aborts execution after this many simple statements
	// (0 = unlimited). Guards tests against accidental infinite loops.
	MaxSteps int64
	// Hidden handles H(...) calls in split open components. Programs that
	// contain HCall statements fail if Hidden is nil.
	Hidden HiddenSession
	// SplitFuncs is the set of function qualified names that have hidden
	// components; entering one opens a hidden activation.
	SplitFuncs map[string]bool
	// Trace, when set, observes split-runtime events.
	Trace Tracer
}

// Interp executes a MiniJ IR program.
type Interp struct {
	prog    *ir.Program
	opts    Options
	globals map[*ir.Var]Value
	steps   int64
	nextObj int64
	depth   int
	// async is non-nil when opts.Hidden supports the pipelined contract.
	async AsyncHiddenSession
}

// New creates an interpreter for prog.
func New(prog *ir.Program, opts Options) *Interp {
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	in := &Interp{prog: prog, opts: opts, globals: make(map[*ir.Var]Value)}
	if ah, ok := opts.Hidden.(AsyncHiddenSession); ok {
		in.async = ah
	}
	return in
}

// Steps returns the number of simple statements executed so far.
func (in *Interp) Steps() int64 { return in.steps }

// Run initializes globals and executes main(). It returns the collected
// output only via opts.Out; the error reports runtime failures.
func (in *Interp) Run() error {
	if err := in.initGlobals(); err != nil {
		return err
	}
	if in.prog.Func("main") == nil {
		return &RuntimeError{Msg: "no main function"}
	}
	_, err := in.Call("main", nil)
	if err == nil && in.async != nil {
		// Drain the in-flight window before reporting success: a one-way
		// hidden operation near the end of the program may still hold a
		// deferred error.
		err = in.async.Barrier()
	}
	return err
}

func (in *Interp) initGlobals() error {
	fr := &frame{fn: nil, locals: map[*ir.Var]Value{}}
	for _, g := range in.prog.Globals {
		v := zero(g.Var)
		if g.Init != nil {
			var err error
			v, err = in.eval(fr, g.Init)
			if err != nil {
				return err
			}
		}
		in.globals[g.Var] = v
	}
	return nil
}

// Call invokes the function with qualified name qn on args.
func (in *Interp) Call(qn string, args []Value) (Value, error) {
	f := in.prog.Func(qn)
	if f == nil {
		return NullV(), &RuntimeError{Msg: "undefined function " + qn}
	}
	return in.callFunc(f, nil, args)
}

// CallMethod invokes a method on the given receiver.
func (in *Interp) CallMethod(qn string, recv *ObjectVal, args []Value) (Value, error) {
	f := in.prog.Func(qn)
	if f == nil {
		return NullV(), &RuntimeError{Msg: "undefined method " + qn}
	}
	return in.callFunc(f, recv, args)
}

type frame struct {
	fn     *ir.Func
	locals map[*ir.Var]Value
	this   *ObjectVal
	// inst is the hidden-activation instance id if fn is split.
	inst  int64
	split bool
}

// signal encodes non-sequential control flow inside statement execution.
type signal int

const (
	sigNone signal = iota
	sigBreak
	sigContinue
	sigReturn
)

const maxCallDepth = 10000

func (in *Interp) callFunc(f *ir.Func, recv *ObjectVal, args []Value) (Value, error) {
	if len(args) != len(f.Params) {
		return NullV(), &RuntimeError{Msg: fmt.Sprintf("%s: got %d args, want %d", f.QName(), len(args), len(f.Params))}
	}
	in.depth++
	if in.depth > maxCallDepth {
		in.depth--
		return NullV(), &RuntimeError{Msg: "call stack overflow"}
	}
	defer func() { in.depth-- }()

	fr := &frame{fn: f, locals: make(map[*ir.Var]Value, len(f.Params)+len(f.Locals)), this: recv}
	for i, p := range f.Params {
		fr.locals[p] = args[i]
	}
	if in.opts.SplitFuncs[f.QName()] {
		if in.opts.Hidden == nil {
			return NullV(), &RuntimeError{Msg: "split function " + f.QName() + " without hidden session"}
		}
		var objID int64
		if recv != nil {
			objID = recv.ID
		}
		var inst int64
		var err error
		if in.async != nil {
			// Pipelined: the instance id is client-assigned so Enter needs
			// no reply, and Exit goes one-way too. Errors surface at the
			// next barrier.
			inst, err = in.async.EnterAsync(f.QName(), objID)
		} else {
			inst, err = in.opts.Hidden.Enter(f.QName(), objID)
		}
		if err != nil {
			return NullV(), err
		}
		fr.inst, fr.split = inst, true
		if in.opts.Trace != nil {
			in.opts.Trace.FragEnter(f.QName(), inst)
		}
		defer func() {
			if in.async != nil {
				_ = in.async.ExitAsync(f.QName(), fr.inst)
			} else {
				_ = in.opts.Hidden.Exit(f.QName(), fr.inst)
			}
			if in.opts.Trace != nil {
				in.opts.Trace.FragExit(f.QName(), fr.inst)
			}
		}()
	}
	sig, val, err := in.execStmts(fr, f.Body)
	if err != nil {
		return NullV(), err
	}
	if sig == sigReturn {
		return val, nil
	}
	return NullV(), nil
}

func (in *Interp) execStmts(fr *frame, stmts []ir.Stmt) (signal, Value, error) {
	for _, s := range stmts {
		sig, v, err := in.execStmt(fr, s)
		if err != nil || sig != sigNone {
			return sig, v, err
		}
	}
	return sigNone, Value{}, nil
}

func (in *Interp) step(s ir.Stmt) error {
	in.steps++
	if in.opts.MaxSteps > 0 && in.steps > in.opts.MaxSteps {
		return &RuntimeError{Pos: s.Pos(), Msg: "step limit exceeded"}
	}
	return nil
}

func (in *Interp) execStmt(fr *frame, s ir.Stmt) (signal, Value, error) {
	if err := in.step(s); err != nil {
		return sigNone, Value{}, err
	}
	switch s := s.(type) {
	case *ir.AssignStmt:
		v, err := in.eval(fr, s.Rhs)
		if err != nil {
			return sigNone, Value{}, err
		}
		return sigNone, Value{}, in.store(fr, s, s.Lhs, v)
	case *ir.IfStmt:
		c, err := in.eval(fr, s.Cond)
		if err != nil {
			return sigNone, Value{}, err
		}
		if c.IsTrue() {
			return in.execStmts(fr, s.Then)
		}
		return in.execStmts(fr, s.Else)
	case *ir.WhileStmt:
		for {
			c, err := in.eval(fr, s.Cond)
			if err != nil {
				return sigNone, Value{}, err
			}
			if !c.IsTrue() {
				return sigNone, Value{}, nil
			}
			sig, v, err := in.execStmts(fr, s.Body)
			if err != nil {
				return sigNone, Value{}, err
			}
			switch sig {
			case sigBreak:
				return sigNone, Value{}, nil
			case sigReturn:
				return sig, v, nil
			}
			// sigNone or sigContinue: run the post section.
			sig, v, err = in.execStmts(fr, s.Post)
			if err != nil {
				return sigNone, Value{}, err
			}
			switch sig {
			case sigBreak:
				return sigNone, Value{}, nil
			case sigReturn:
				return sig, v, nil
			}
			if err := in.step(s); err != nil { // count each iteration's re-test
				return sigNone, Value{}, err
			}
		}
	case *ir.ReturnStmt:
		if s.Value == nil {
			return sigReturn, NullV(), nil
		}
		v, err := in.eval(fr, s.Value)
		return sigReturn, v, err
	case *ir.BreakStmt:
		return sigBreak, Value{}, nil
	case *ir.ContinueStmt:
		return sigContinue, Value{}, nil
	case *ir.PrintStmt:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return sigNone, Value{}, err
			}
			parts[i] = v.String()
		}
		if in.async != nil {
			// Output is externally visible: flush the in-flight window
			// first so a deferred one-way error suppresses exactly the
			// same output it would under synchronous execution.
			if err := in.async.Barrier(); err != nil {
				return sigNone, Value{}, err
			}
		}
		fmt.Fprintln(in.opts.Out, strings.Join(parts, " "))
		return sigNone, Value{}, nil
	case *ir.CallStmt:
		_, err := in.eval(fr, s.Call)
		return sigNone, Value{}, err
	case *ir.HCallStmt:
		if s.Call.NoReply && in.async != nil {
			return sigNone, Value{}, in.hcallOneWay(fr, s.Call)
		}
		_, err := in.eval(fr, s.Call)
		return sigNone, Value{}, err
	}
	return sigNone, Value{}, &RuntimeError{Pos: s.Pos(), Msg: fmt.Sprintf("unknown statement %T", s)}
}

// hcallOneWay dispatches a reply-free hidden statement call without
// blocking: the splitter marked it NoReply (its value is discarded and it
// leaks nothing), so the open side can keep running while the update is in
// flight.
func (in *Interp) hcallOneWay(fr *frame, e *ir.HCallExpr) error {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := in.eval(fr, a)
		if err != nil {
			return err
		}
		args[i] = v
	}
	if e.Component != "" {
		var inst int64
		if e.Obj != nil {
			ov, err := in.eval(fr, e.Obj)
			if err != nil {
				return err
			}
			if ov.Kind != KindObject || ov.Obj == nil {
				return &RuntimeError{Msg: "hidden-field access on null object"}
			}
			inst = ov.Obj.ID
		}
		if in.opts.Trace != nil {
			in.opts.Trace.HiddenCall(e.Component, inst, e.FragID, true)
		}
		return in.async.CallOneWay(e.Component, inst, e.FragID, args)
	}
	if in.opts.Trace != nil {
		in.opts.Trace.HiddenCall(fr.fn.QName(), fr.inst, e.FragID, true)
	}
	return in.async.CallOneWay(fr.fn.QName(), fr.inst, e.FragID, args)
}

func (in *Interp) store(fr *frame, s ir.Stmt, t ir.Target, v Value) error {
	switch t := t.(type) {
	case *ir.VarTarget:
		if t.Var.Kind == ir.VarGlobal {
			in.globals[t.Var] = v
		} else {
			fr.locals[t.Var] = v
		}
		return nil
	case *ir.IndexTarget:
		av, err := in.eval(fr, t.Arr)
		if err != nil {
			return err
		}
		iv, err := in.eval(fr, t.I)
		if err != nil {
			return err
		}
		if av.Kind != KindArray || av.Arr == nil {
			return &RuntimeError{Pos: s.Pos(), Msg: "store into null array"}
		}
		if iv.I < 0 || iv.I >= int64(len(av.Arr.Elems)) {
			return &RuntimeError{Pos: s.Pos(), Msg: fmt.Sprintf("index %d out of range [0,%d)", iv.I, len(av.Arr.Elems))}
		}
		av.Arr.Elems[iv.I] = v
		return nil
	case *ir.FieldTarget:
		ov, err := in.eval(fr, t.Obj)
		if err != nil {
			return err
		}
		if ov.Kind != KindObject || ov.Obj == nil {
			return &RuntimeError{Pos: s.Pos(), Msg: "store into null object"}
		}
		ov.Obj.Fields[t.Field] = v
		return nil
	}
	return &RuntimeError{Pos: s.Pos(), Msg: fmt.Sprintf("unknown target %T", t)}
}

func zero(v *ir.Var) Value { return zeroType(v.Type) }

// convertValue applies int(x) / float(x) semantics (float-to-int truncates).
func convertValue(toFloat bool, x Value) Value {
	if toFloat {
		if x.Kind == KindInt {
			return FloatV(float64(x.I))
		}
		return x
	}
	if x.Kind == KindFloat {
		return IntV(int64(x.F))
	}
	return x
}

// zeroType returns the zero value of a semantic type.
func zeroType(t types.Type) Value {
	b, ok := t.(*types.Basic)
	if !ok {
		return NullV()
	}
	switch b.Kind {
	case ast.Int:
		return IntV(0)
	case ast.Float:
		return FloatV(0)
	case ast.Bool:
		return BoolV(false)
	case ast.String:
		return StrV("")
	}
	return NullV()
}

func (in *Interp) eval(fr *frame, e ir.Expr) (Value, error) {
	switch e := e.(type) {
	case *ir.Const:
		switch e.Kind {
		case ir.ConstInt:
			return IntV(e.I), nil
		case ir.ConstFloat:
			return FloatV(e.F), nil
		case ir.ConstBool:
			return BoolV(e.B), nil
		case ir.ConstString:
			return StrV(e.S), nil
		case ir.ConstNull:
			return NullV(), nil
		}
	case *ir.VarRef:
		if e.Var.Kind == ir.VarGlobal {
			return in.globals[e.Var], nil
		}
		return fr.locals[e.Var], nil
	case *ir.ThisExpr:
		if fr.this == nil {
			return NullV(), &RuntimeError{Msg: "this outside method"}
		}
		return Value{Kind: KindObject, Obj: fr.this}, nil
	case *ir.Unary:
		x, err := in.eval(fr, e.X)
		if err != nil {
			return NullV(), err
		}
		switch e.Op {
		case token.MINUS:
			if x.Kind == KindFloat {
				return FloatV(-x.F), nil
			}
			return IntV(-x.I), nil
		case token.NOT:
			return BoolV(!x.B), nil
		}
	case *ir.Binary:
		// Short-circuit logical operators.
		if e.Op == token.AND || e.Op == token.OR {
			x, err := in.eval(fr, e.X)
			if err != nil {
				return NullV(), err
			}
			if e.Op == token.AND && !x.B {
				return BoolV(false), nil
			}
			if e.Op == token.OR && x.B {
				return BoolV(true), nil
			}
			y, err := in.eval(fr, e.Y)
			if err != nil {
				return NullV(), err
			}
			return BoolV(y.B), nil
		}
		x, err := in.eval(fr, e.X)
		if err != nil {
			return NullV(), err
		}
		y, err := in.eval(fr, e.Y)
		if err != nil {
			return NullV(), err
		}
		return EvalBinary(e.Op, x, y)
	case *ir.IndexExpr:
		av, err := in.eval(fr, e.Arr)
		if err != nil {
			return NullV(), err
		}
		iv, err := in.eval(fr, e.I)
		if err != nil {
			return NullV(), err
		}
		if av.Kind != KindArray || av.Arr == nil {
			return NullV(), &RuntimeError{Msg: "read from null array"}
		}
		if iv.I < 0 || iv.I >= int64(len(av.Arr.Elems)) {
			return NullV(), &RuntimeError{Msg: fmt.Sprintf("index %d out of range [0,%d)", iv.I, len(av.Arr.Elems))}
		}
		return av.Arr.Elems[iv.I], nil
	case *ir.FieldExpr:
		ov, err := in.eval(fr, e.Obj)
		if err != nil {
			return NullV(), err
		}
		if ov.Kind != KindObject || ov.Obj == nil {
			return NullV(), &RuntimeError{Msg: "read field of null object"}
		}
		return ov.Obj.Fields[e.Field], nil
	case *ir.CallExpr:
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return NullV(), err
			}
			args[i] = v
		}
		var recv *ObjectVal
		if e.Recv != nil {
			rv, err := in.eval(fr, e.Recv)
			if err != nil {
				return NullV(), err
			}
			if rv.Kind != KindObject || rv.Obj == nil {
				return NullV(), &RuntimeError{Msg: "method call on null object"}
			}
			recv = rv.Obj
		}
		f := in.prog.Func(e.Callee)
		if f == nil {
			return NullV(), &RuntimeError{Msg: "undefined function " + e.Callee}
		}
		return in.callFunc(f, recv, args)
	case *ir.NewObjectExpr:
		in.nextObj++
		obj := &ObjectVal{Class: e.Class, Fields: map[string]Value{}, ID: in.nextObj}
		if cl := in.prog.Classes[e.Class]; cl != nil {
			for _, fv := range cl.Fields {
				obj.Fields[fv.Name] = zeroOf(fv)
			}
		}
		return Value{Kind: KindObject, Obj: obj}, nil
	case *ir.NewArrayExpr:
		sz, err := in.eval(fr, e.Size)
		if err != nil {
			return NullV(), err
		}
		if sz.I < 0 {
			return NullV(), &RuntimeError{Msg: fmt.Sprintf("negative array size %d", sz.I)}
		}
		const maxArray = 1 << 26
		if sz.I > maxArray {
			return NullV(), &RuntimeError{Msg: fmt.Sprintf("array size %d too large", sz.I)}
		}
		elems := make([]Value, sz.I)
		z := zeroType(e.Elem)
		for i := range elems {
			elems[i] = z
		}
		return Value{Kind: KindArray, Arr: &ArrayVal{Elems: elems}}, nil
	case *ir.LenExpr:
		av, err := in.eval(fr, e.Arr)
		if err != nil {
			return NullV(), err
		}
		switch av.Kind {
		case KindArray:
			if av.Arr == nil {
				return NullV(), &RuntimeError{Msg: "len of null array"}
			}
			return IntV(int64(len(av.Arr.Elems))), nil
		case KindString:
			return IntV(int64(len(av.S))), nil
		}
		return NullV(), &RuntimeError{Msg: "len of non-array"}
	case *ir.CondExpr:
		c, err := in.eval(fr, e.C)
		if err != nil {
			return NullV(), err
		}
		if c.IsTrue() {
			return in.eval(fr, e.T)
		}
		return in.eval(fr, e.F)
	case *ir.ConvertExpr:
		x, err := in.eval(fr, e.X)
		if err != nil {
			return NullV(), err
		}
		return convertValue(e.ToFloat, x), nil
	case *ir.HCallExpr:
		if in.opts.Hidden == nil {
			return NullV(), &RuntimeError{Msg: "H(...) call without hidden session"}
		}
		args := make([]Value, len(e.Args))
		for i, a := range e.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return NullV(), err
			}
			args[i] = v
		}
		if e.Component != "" {
			// Shared component: hidden globals use the single program-level
			// activation (id 0); hidden class fields address the store of
			// the object the call names.
			var inst int64
			if e.Obj != nil {
				ov, err := in.eval(fr, e.Obj)
				if err != nil {
					return NullV(), err
				}
				if ov.Kind != KindObject || ov.Obj == nil {
					return NullV(), &RuntimeError{Msg: "hidden-field access on null object"}
				}
				inst = ov.Obj.ID
			}
			if in.opts.Trace != nil {
				in.opts.Trace.HiddenCall(e.Component, inst, e.FragID, false)
			}
			return in.opts.Hidden.Call(e.Component, inst, e.FragID, args)
		}
		if in.opts.Trace != nil {
			in.opts.Trace.HiddenCall(fr.fn.QName(), fr.inst, e.FragID, false)
		}
		return in.opts.Hidden.Call(fr.fn.QName(), fr.inst, e.FragID, args)
	}
	return NullV(), &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}
}

// EvalBinary applies a (non-short-circuit) binary operator to two values.
// Exported so the hidden-component executor evaluates expressions with
// identical semantics. The semantics themselves live in EvalBinOp, keyed
// by the language-neutral operator enum.
func EvalBinary(op token.Kind, x, y Value) (Value, error) {
	return EvalBinOp(ir.BinOpOf(op), x, y)
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func zeroOf(v *ir.Var) Value { return zeroType(v.Type) }
