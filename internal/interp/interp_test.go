package interp

import (
	"strings"
	"testing"

	"slicehide/internal/ir"
)

// run compiles and executes src, returning the program output.
func run(t *testing.T, src string) string {
	t.Helper()
	out, err := runErr(src)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return out
}

func runErr(src string) (string, error) {
	p, err := ir.Compile(src)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	in := New(p, Options{Out: &b, MaxSteps: 2_000_000})
	err = in.Run()
	return b.String(), err
}

func TestArithmetic(t *testing.T) {
	out := run(t, `
func main() {
    print(2 + 3 * 4);
    print(10 / 3, 10 % 3);
    print(2.5 * 4.0);
    print(7 - 10);
    print(-5 / 2);
}`)
	want := "14\n3 1\n10.0\n-3\n-2\n"
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	out := run(t, `
func main() {
    print(1 < 2, 2 <= 2, 3 > 4, 4 >= 5, 1 == 1, 1 != 1);
    print(true && false, true || false, !true);
    print("abc" < "abd", "a" + "b" == "ab");
}`)
	want := "true true false false true false\nfalse true false\ntrue true\n"
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right of && must not be evaluated.
	out := run(t, `
func boom(): bool { var x: int = 1 / 0; return x > 0; }
func main() {
    var a: int = 0;
    if (a != 0 && boom()) { print("bad"); } else { print("ok"); }
    if (a == 0 || boom()) { print("ok2"); }
}`)
	if out != "ok\nok2\n" {
		t.Errorf("got %q", out)
	}
}

func TestLoopsAndControl(t *testing.T) {
	out := run(t, `
func main() {
    var s: int = 0;
    for (var i: int = 0; i < 10; i++) {
        if (i == 7) { break; }
        if (i % 2 == 0) { continue; }
        s = s + i;
    }
    print(s);
    var j: int = 3;
    while (j > 0) { j = j - 1; }
    print(j);
}`)
	if out != "9\n0\n" {
		t.Errorf("got %q", out)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := run(t, `
func fib(n: int): int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(15)); }`)
	if out != "610\n" {
		t.Errorf("got %q", out)
	}
}

func TestArrays(t *testing.T) {
	out := run(t, `
func main() {
    var a: int[] = new int[5];
    for (var i: int = 0; i < len(a); i++) { a[i] = i * i; }
    var s: int = 0;
    for (var i: int = 0; i < len(a); i++) { s = s + a[i]; }
    print(s, len(a));
}`)
	if out != "30 5\n" {
		t.Errorf("got %q", out)
	}
}

func TestObjects(t *testing.T) {
	out := run(t, `
class Counter {
    field n: int;
    method bump(): int { n = n + 1; return n; }
}
class Pair {
    field a: Counter;
    field b: Counter;
}
func main() {
    var p: Pair = new Pair();
    p.a = new Counter();
    p.b = p.a;
    p.a.bump();
    print(p.b.bump());
}`)
	// p.a and p.b alias the same Counter.
	if out != "2\n" {
		t.Errorf("got %q", out)
	}
}

func TestMethodSibling(t *testing.T) {
	out := run(t, `
class C {
    field v: int;
    method set(x: int) { v = x; }
    method doubled(): int { return get() * 2; }
    method get(): int { return v; }
}
func main() {
    var c: C = new C();
    c.set(21);
    print(c.doubled());
}`)
	if out != "42\n" {
		t.Errorf("got %q", out)
	}
}

func TestGlobals(t *testing.T) {
	out := run(t, `
var counter: int = 100;
var name: string = "g";
func bump() { counter = counter + 1; }
func main() {
    bump();
    bump();
    print(counter, name);
}`)
	if out != "102 g\n" {
		t.Errorf("got %q", out)
	}
}

func TestUninitializedGlobalZero(t *testing.T) {
	out := run(t, `
var g: int;
var f: float;
var b: bool;
var s: string;
func main() { print(g, f, b, s); }`)
	if out != "0 0.0 false \n" {
		t.Errorf("got %q", out)
	}
}

func TestTernary(t *testing.T) {
	out := run(t, `
func main() {
    var x: int = 5;
    print(x > 3 ? "big" : "small");
    print(x < 3 ? 1 : 0);
}`)
	if out != "big\n0\n" {
		t.Errorf("got %q", out)
	}
}

func TestStringsAndChars(t *testing.T) {
	out := run(t, `
func main() {
    var s: string = "hi " + "there";
    print(s, len(s));
    print('A');
}`)
	if out != "hi there 8\n65\n" {
		t.Errorf("got %q", out)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`func main() { var x: int = 1 / 0; print(x); }`, "division by zero"},
		{`func main() { var x: int = 1 % 0; print(x); }`, "division by zero"},
		{`func main() { var a: int[] = new int[2]; a[5] = 1; }`, "out of range"},
		{`func main() { var a: int[] = new int[2]; print(a[-1]); }`, "out of range"},
		{`func main() { var a: int[] = null; a[0] = 1; }`, "null array"},
		{`func main() { var a: int[] = null; print(a[0]); }`, "null array"},
		{`class C { field v: int; } func main() { var c: C = null; print(c.v); }`, "null object"},
		{`class C { field v: int; } func main() { var c: C = null; c.v = 1; }`, "null object"},
		{`class C { field v: int; method m() { } } func main() { var c: C = null; c.m(); }`, "null object"},
		{`func main() { var a: int[] = new int[0 - 3]; print(len(a)); }`, "negative array size"},
		{`func main() { var s: string = null ? "" : ""; }`, ""}, // cond on null is false-y? see below
	}
	for _, c := range cases[:10] {
		_, err := runErr(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestStepLimit(t *testing.T) {
	p := ir.MustCompile(`func main() { for (;;) { } }`)
	in := New(p, Options{MaxSteps: 1000})
	err := in.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step-limit error, got %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	_, err := runErr(`
func f(n: int): int { return f(n + 1); }
func main() { print(f(0)); }`)
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("expected stack overflow, got %v", err)
	}
}

func TestStepsCounted(t *testing.T) {
	p := ir.MustCompile(`func main() { var x: int = 1; x = x + 1; print(x); }`)
	in := New(p, Options{})
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Steps() < 3 {
		t.Errorf("steps = %d, want >= 3", in.Steps())
	}
}

func TestCallByQName(t *testing.T) {
	p := ir.MustCompile(`func add(a: int, b: int): int { return a + b; } func main() { }`)
	in := New(p, Options{})
	v, err := in.Call("add", []Value{IntV(2), IntV(40)})
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Errorf("got %v", v)
	}
}

func TestNullEquality(t *testing.T) {
	out := run(t, `
class C { field v: int; }
func main() {
    var c: C = null;
    var d: C = new C();
    print(c == null, d == null, d != null);
}`)
	if out != "true false true\n" {
		t.Errorf("got %q", out)
	}
}

func TestFloatPrinting(t *testing.T) {
	out := run(t, `func main() { print(1.5, 2.0, 0.25, 1e10); }`)
	if out != "1.5 2.0 0.25 1e+10\n" {
		t.Errorf("got %q", out)
	}
}

func TestWhilePostOnContinue(t *testing.T) {
	// continue must still run the for-post (i++), not loop forever.
	out := run(t, `
func main() {
    var n: int = 0;
    for (var i: int = 0; i < 5; i++) {
        if (i == 2) { continue; }
        n = n + 1;
    }
    print(n);
}`)
	if out != "4\n" {
		t.Errorf("got %q", out)
	}
}
