package interp

import (
	"fmt"
	"strings"

	"slicehide/internal/ir"
)

// ExecMode selects how the hidden runtime executes fragment bodies: the
// compiled bytecode VM (the default hot path) or the tree-walking
// interpreter (kept as the differential-testing oracle). It lives here, at
// the bottom of the execution stack, so both internal/vm and internal/hrt
// can consume it without an import cycle.
type ExecMode int

const (
	// ExecVM executes fragments as compiled bytecode (default).
	ExecVM ExecMode = iota
	// ExecInterp tree-walks fragment IR (the differential oracle).
	ExecInterp
)

func (m ExecMode) String() string {
	switch m {
	case ExecVM:
		return "vm"
	case ExecInterp:
		return "interp"
	}
	return fmt.Sprintf("ExecMode(%d)", int(m))
}

// ParseExecMode parses the -exec flag values "vm" and "interp"; the
// empty string means the default (vm), so zero-valued configs work.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "vm", "":
		return ExecVM, nil
	case "interp":
		return ExecInterp, nil
	}
	return ExecVM, fmt.Errorf("unknown exec mode %q (want vm or interp)", s)
}

// EvalBinOp applies a (non-short-circuit) binary operator to two values,
// dispatching on the language-neutral operator enum. This is the single
// definition of MiniJ binary-operator semantics: EvalBinary converts and
// delegates, and the bytecode VM's inlined fast paths mirror it exactly
// (the differential fuzzer holds them together).
func EvalBinOp(op ir.BinOp, x, y Value) (Value, error) {
	switch op {
	case ir.BinAdd:
		switch x.Kind {
		case KindInt:
			return IntV(x.I + y.I), nil
		case KindFloat:
			return FloatV(x.F + y.F), nil
		case KindString:
			return StrV(x.S + y.S), nil
		}
	case ir.BinSub:
		if x.Kind == KindFloat {
			return FloatV(x.F - y.F), nil
		}
		return IntV(x.I - y.I), nil
	case ir.BinMul:
		if x.Kind == KindFloat {
			return FloatV(x.F * y.F), nil
		}
		return IntV(x.I * y.I), nil
	case ir.BinDiv:
		if x.Kind == KindFloat {
			return FloatV(x.F / y.F), nil
		}
		if y.I == 0 {
			return NullV(), &RuntimeError{Msg: "division by zero"}
		}
		return IntV(x.I / y.I), nil
	case ir.BinMod:
		if y.I == 0 {
			return NullV(), &RuntimeError{Msg: "division by zero"}
		}
		return IntV(x.I % y.I), nil
	case ir.BinEq:
		return BoolV(x.Equal(y)), nil
	case ir.BinNeq:
		return BoolV(!x.Equal(y)), nil
	case ir.BinLt, ir.BinLeq, ir.BinGt, ir.BinGeq:
		var cmp int
		switch x.Kind {
		case KindInt:
			cmp = compareInt(x.I, y.I)
		case KindFloat:
			cmp = compareFloat(x.F, y.F)
		case KindString:
			cmp = strings.Compare(x.S, y.S)
		default:
			return NullV(), &RuntimeError{Msg: "ordered comparison of " + x.Kind.String()}
		}
		switch op {
		case ir.BinLt:
			return BoolV(cmp < 0), nil
		case ir.BinLeq:
			return BoolV(cmp <= 0), nil
		case ir.BinGt:
			return BoolV(cmp > 0), nil
		case ir.BinGeq:
			return BoolV(cmp >= 0), nil
		}
	}
	return NullV(), &RuntimeError{Msg: fmt.Sprintf("invalid binary op %s on %s", op, x.Kind)}
}
