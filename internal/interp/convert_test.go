package interp

import (
	"strings"
	"testing"
)

func TestConversions(t *testing.T) {
	out := run(t, `
func main() {
    var i: int = 7;
    var f: float = float(i) / 2.0;
    print(f);
    var back: int = int(f);
    print(back);
    print(int(3.99), int(-3.99));
    print(float(10) * 0.5);
    print(int(true ? 2.5 : 0.5));
}`)
	want := "3.5\n3\n3 -3\n5.0\n2\n"
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestConversionIdentity(t *testing.T) {
	out := run(t, `
func main() {
    print(int(5), float(2.5));
}`)
	if out != "5 2.5\n" {
		t.Errorf("got %q", out)
	}
}

func TestConversionTypeErrors(t *testing.T) {
	_, err := runErr(`func main() { var s: string = "x"; print(int(s)); }`)
	if err == nil || !strings.Contains(err.Error(), "convert") {
		t.Fatalf("expected conversion type error, got %v", err)
	}
	_, err = runErr(`func main() { var b: bool = true; print(float(b)); }`)
	if err == nil {
		t.Fatal("expected conversion type error for bool")
	}
}

func TestConversionInsideSplitHiddenCode(t *testing.T) {
	// Covered end-to-end elsewhere (jfig kernels); here just the printer.
	out := run(t, `
func f(x: int): float {
    var h: float = float(x) * 1.5;
    h = h + 0.25;
    return h;
}
func main() { print(f(2)); }`)
	if out != "3.25\n" {
		t.Errorf("got %q", out)
	}
}
