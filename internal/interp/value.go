// Package interp implements a tree-walking interpreter for MiniJ IR. It
// executes original (unsplit) programs for baseline measurements and is
// reused by the split runtime (package hrt) to execute open components,
// dispatching H(...) calls to a hidden component through a transport.
package interp

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind tags runtime values.
type ValueKind int

// Value kinds.
const (
	KindNull ValueKind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindArray
	KindObject
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	case KindArray:
		return "array"
	case KindObject:
		return "object"
	}
	return "?"
}

// Value is a MiniJ runtime value.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	B    bool
	S    string
	Arr  *ArrayVal
	Obj  *ObjectVal
}

// ArrayVal is array storage (shared by reference).
type ArrayVal struct {
	Elems []Value
}

// ObjectVal is object storage (shared by reference).
type ObjectVal struct {
	Class  string
	Fields map[string]Value
	// ID is a unique instance id, used by class-level splitting to pair
	// open and hidden instances.
	ID int64
}

// Convenience constructors.

// IntV returns an int value.
func IntV(v int64) Value { return Value{Kind: KindInt, I: v} }

// FloatV returns a float value.
func FloatV(v float64) Value { return Value{Kind: KindFloat, F: v} }

// BoolV returns a bool value.
func BoolV(v bool) Value { return Value{Kind: KindBool, B: v} }

// StrV returns a string value.
func StrV(v string) Value { return Value{Kind: KindString, S: v} }

// NullV returns the null value.
func NullV() Value { return Value{Kind: KindNull} }

// IsTrue reports whether v is the boolean true.
func (v Value) IsTrue() bool { return v.Kind == KindBool && v.B }

// String renders the value the way print does.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.F, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eEInfNa") {
			s += ".0"
		}
		return s
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindString:
		return v.S
	case KindArray:
		if v.Arr == nil {
			return "null"
		}
		parts := make([]string, len(v.Arr.Elems))
		for i, e := range v.Arr.Elems {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, " ") + "]"
	case KindObject:
		if v.Obj == nil {
			return "null"
		}
		return fmt.Sprintf("%s#%d", v.Obj.Class, v.Obj.ID)
	}
	return "?"
}

// Equal reports value equality (reference equality for aggregates).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		// null compares equal to null-valued references only.
		if v.Kind == KindNull && (o.Kind == KindArray && o.Arr == nil || o.Kind == KindObject && o.Obj == nil) {
			return true
		}
		if o.Kind == KindNull && (v.Kind == KindArray && v.Arr == nil || v.Kind == KindObject && v.Obj == nil) {
			return true
		}
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt:
		return v.I == o.I
	case KindFloat:
		return v.F == o.F
	case KindBool:
		return v.B == o.B
	case KindString:
		return v.S == o.S
	case KindArray:
		return v.Arr == o.Arr
	case KindObject:
		return v.Obj == o.Obj
	}
	return false
}
