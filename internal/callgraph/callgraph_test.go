package callgraph

import (
	"sort"
	"testing"

	"slicehide/internal/ir"
)

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Build(p)
}

func TestEdges(t *testing.T) {
	g := build(t, `
func a() { b(); c(); }
func b() { c(); }
func c() { }
func main() { a(); }
`)
	want := map[string][]string{"a": {"b", "c"}, "b": {"c"}, "main": {"a"}}
	for caller, callees := range want {
		for _, c := range callees {
			if !g.Callees[caller][c] {
				t.Errorf("missing edge %s -> %s\n%s", caller, c, g)
			}
		}
	}
	if !g.Callers["c"]["a"] || !g.Callers["c"]["b"] {
		t.Errorf("callers of c wrong: %v", g.Callers["c"])
	}
}

func TestMethodEdges(t *testing.T) {
	g := build(t, `
class C {
    field v: int;
    method m(): int { return n() + 1; }
    method n(): int { return v; }
}
func main() { var c: C = new C(); print(c.m()); }
`)
	if !g.Callees["main"]["C.m"] {
		t.Errorf("main should call C.m\n%s", g)
	}
	if !g.Callees["C.m"]["C.n"] {
		t.Errorf("C.m should call C.n\n%s", g)
	}
}

func TestDirectRecursion(t *testing.T) {
	g := build(t, `
func fib(n: int): int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() { print(fib(10)); }
`)
	if !g.Recursive["fib"] {
		t.Error("fib must be recursive")
	}
	if g.Recursive["main"] {
		t.Error("main must not be recursive")
	}
}

func TestIndirectRecursion(t *testing.T) {
	g := build(t, `
func even(n: int): bool { if (n == 0) { return true; } return odd(n-1); }
func odd(n: int): bool { if (n == 0) { return false; } return even(n-1); }
func main() { print(even(7)); }
`)
	if !g.Recursive["even"] || !g.Recursive["odd"] {
		t.Error("even/odd must be mutually recursive")
	}
}

func TestLoopCalled(t *testing.T) {
	g := build(t, `
func work(i: int): int { return i * 2; }
func once(): int { return 7; }
func main() {
    var s: int = once();
    for (var i: int = 0; i < 10; i++) { s = s + work(i); }
    print(s);
}
`)
	if !g.LoopCalled["work"] {
		t.Error("work is called in a loop")
	}
	if g.LoopCalled["once"] {
		t.Error("once is not called in a loop")
	}
}

func TestReachable(t *testing.T) {
	g := build(t, `
func a() { b(); }
func b() { }
func dead() { }
func main() { a(); }
`)
	r := g.Reachable("main")
	if !r["a"] || !r["b"] || !r["main"] {
		t.Errorf("reachable: %v", r)
	}
	if r["dead"] {
		t.Error("dead must not be reachable")
	}
}

func TestDominators(t *testing.T) {
	g := build(t, `
func a() { c(); }
func b() { c(); }
func c() { d(); }
func d() { }
func main() { a(); b(); }
`)
	dom := g.Dominators("main")
	// c dominates d; a does not dominate c (b also reaches c).
	if !dom["d"]["c"] {
		t.Error("c must dominate d")
	}
	if dom["c"]["a"] {
		t.Error("a must not dominate c")
	}
	if !dom["d"]["main"] {
		t.Error("main dominates everything")
	}
}

func TestCutCoversLeaves(t *testing.T) {
	g := build(t, `
func a() { c(); }
func b() { c(); }
func c() { }
func main() { a(); b(); }
`)
	chosen, uncovered := g.Cut("main", CutOptions{})
	if len(uncovered) != 0 {
		t.Fatalf("uncovered: %v", uncovered)
	}
	// c dominates the only leaf (c itself); greedy should pick one function.
	if len(chosen) != 1 {
		t.Fatalf("chosen: %v", chosen)
	}
}

func TestCutRespectsEligibility(t *testing.T) {
	g := build(t, `
func work(i: int): int { return i; }
func main() { for (var i: int = 0; i < 3; i++) { print(work(i)); } }
`)
	chosen, _ := g.Cut("main", CutOptions{AvoidLoopCalled: true})
	for _, c := range chosen {
		if c == "work" {
			t.Error("loop-called function selected despite AvoidLoopCalled")
		}
	}
}

func TestCutAvoidsRecursive(t *testing.T) {
	g := build(t, `
func fact(n: int): int { if (n < 2) { return 1; } return n * fact(n-1); }
func main() { print(fact(5)); }
`)
	chosen, _ := g.Cut("main", CutOptions{AvoidRecursive: true})
	sort.Strings(chosen)
	for _, c := range chosen {
		if c == "fact" {
			t.Error("recursive function selected despite AvoidRecursive")
		}
	}
	// main itself remains an eligible dominator of the leaf.
	if len(chosen) == 0 {
		t.Error("expected main to be chosen")
	}
}

func TestCutCustomFilter(t *testing.T) {
	g := build(t, `
func a() { }
func main() { a(); }
`)
	chosen, uncovered := g.Cut("main", CutOptions{Eligible: func(q string) bool { return q == "a" }})
	if len(chosen) != 1 || chosen[0] != "a" {
		t.Errorf("chosen: %v (uncovered %v)", chosen, uncovered)
	}
}

func TestCutUncoverable(t *testing.T) {
	g := build(t, `
func a() { }
func main() { a(); }
`)
	_, uncovered := g.Cut("main", CutOptions{Eligible: func(q string) bool { return false }})
	if len(uncovered) == 0 {
		t.Error("expected uncovered leaves when nothing is eligible")
	}
}

func TestDeterministicOutput(t *testing.T) {
	src := `
func a() { b(); c(); d(); }
func b() { e(); }
func c() { e(); }
func d() { e(); }
func e() { }
func main() { a(); }
`
	g1, g2 := build(t, src), build(t, src)
	if g1.String() != g2.String() {
		t.Error("graph dump not deterministic")
	}
	c1, u1 := g1.Cut("main", CutOptions{})
	c2, u2 := g2.Cut("main", CutOptions{})
	if len(c1) != len(c2) || len(u1) != len(u2) {
		t.Error("cut not deterministic")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Error("cut order not deterministic")
		}
	}
}
