// Package callgraph builds the program call graph and implements the
// function-selection strategy of the paper (§2.2): find a cut across the
// call graph so that every execution runs at least one split function,
// while avoiding functions that are recursive or called from inside loops.
package callgraph

import (
	"fmt"
	"sort"
	"strings"

	"slicehide/internal/cfg"
	"slicehide/internal/ir"
)

// CallSite records one call edge occurrence.
type CallSite struct {
	Caller string
	Callee string
	// StmtID is the statement containing the call in the caller.
	StmtID int
	// InLoop reports whether the call site sits inside a loop of the caller.
	InLoop bool
}

// Graph is a program call graph.
type Graph struct {
	Prog *ir.Program
	// Callees maps each function to the set of functions it calls.
	Callees map[string]map[string]bool
	// Callers is the reverse relation.
	Callers map[string]map[string]bool
	// Sites lists every call site.
	Sites []CallSite
	// Recursive marks functions involved in direct or indirect recursion.
	Recursive map[string]bool
	// LoopCalled marks functions that have at least one call site inside a
	// loop of some caller.
	LoopCalled map[string]bool
}

// Build constructs the call graph of prog.
func Build(prog *ir.Program) *Graph {
	g := &Graph{
		Prog:       prog,
		Callees:    make(map[string]map[string]bool),
		Callers:    make(map[string]map[string]bool),
		Recursive:  make(map[string]bool),
		LoopCalled: make(map[string]bool),
	}
	for _, qn := range prog.Order {
		g.Callees[qn] = map[string]bool{}
	}
	for _, qn := range prog.Order {
		f := prog.Funcs[qn]
		flow := cfg.Build(f)
		depths := cfg.LoopDepths(flow)
		for _, n := range flow.Nodes {
			if n.Stmt == nil {
				continue
			}
			inLoop := depths[n] > 0
			ir.StmtExprs(n.Stmt, func(e ir.Expr) {
				ir.WalkExpr(e, func(x ir.Expr) {
					call, ok := x.(*ir.CallExpr)
					if !ok {
						return
					}
					g.addEdge(qn, call.Callee, n.Stmt.ID(), inLoop)
				})
			})
		}
	}
	g.findRecursion()
	return g
}

func (g *Graph) addEdge(caller, callee string, stmtID int, inLoop bool) {
	if g.Callees[caller] == nil {
		g.Callees[caller] = map[string]bool{}
	}
	g.Callees[caller][callee] = true
	if g.Callers[callee] == nil {
		g.Callers[callee] = map[string]bool{}
	}
	g.Callers[callee][caller] = true
	g.Sites = append(g.Sites, CallSite{Caller: caller, Callee: callee, StmtID: stmtID, InLoop: inLoop})
	if inLoop {
		g.LoopCalled[callee] = true
	}
}

// findRecursion marks functions in non-trivial SCCs or with self-loops
// using Tarjan's algorithm (iterative to bound stack depth).
func (g *Graph) findRecursion() {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0

	var names []string
	for qn := range g.Callees {
		names = append(names, qn)
	}
	sort.Strings(names)

	type frame struct {
		node  string
		succs []string
		i     int
	}
	succsOf := func(n string) []string {
		var out []string
		for c := range g.Callees[n] {
			if _, known := g.Callees[c]; known {
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return out
	}
	for _, start := range names {
		if _, seen := index[start]; seen {
			continue
		}
		var frames []frame
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		frames = append(frames, frame{node: start, succs: succsOf(start)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				w := f.succs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w, succs: succsOf(w)})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Pop frame.
			v := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.node] {
					low[parent.node] = low[v]
				}
			}
			if low[v] == index[v] {
				// Root of an SCC: pop members.
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				if len(scc) > 1 {
					for _, m := range scc {
						g.Recursive[m] = true
					}
				} else if g.Callees[scc[0]][scc[0]] {
					g.Recursive[scc[0]] = true // self-recursion
				}
			}
		}
	}
}

// Reachable returns the set of functions reachable from root (inclusive).
func (g *Graph) Reachable(root string) map[string]bool {
	seen := map[string]bool{}
	var walk func(string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for c := range g.Callees[n] {
			if _, known := g.Callees[c]; known {
				walk(c)
			}
		}
	}
	walk(root)
	return seen
}

// Dominators computes call-graph dominators from root: dom[f] is the set of
// functions present on every call path from root to f.
func (g *Graph) Dominators(root string) map[string]map[string]bool {
	reach := g.Reachable(root)
	var nodes []string
	for n := range reach {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	dom := make(map[string]map[string]bool, len(nodes))
	all := map[string]bool{}
	for _, n := range nodes {
		all[n] = true
	}
	for _, n := range nodes {
		if n == root {
			dom[n] = map[string]bool{root: true}
		} else {
			full := make(map[string]bool, len(all))
			for k := range all {
				full[k] = true
			}
			dom[n] = full
		}
	}
	changed := true
	for changed {
		changed = false
		for _, n := range nodes {
			if n == root {
				continue
			}
			var inter map[string]bool
			for p := range g.Callers[n] {
				if !reach[p] {
					continue
				}
				if inter == nil {
					inter = make(map[string]bool, len(dom[p]))
					for k := range dom[p] {
						inter[k] = true
					}
				} else {
					for k := range inter {
						if !dom[p][k] {
							delete(inter, k)
						}
					}
				}
			}
			if inter == nil {
				inter = map[string]bool{}
			}
			inter[n] = true
			if len(inter) != len(dom[n]) {
				dom[n] = inter
				changed = true
				continue
			}
			for k := range inter {
				if !dom[n][k] {
					dom[n] = inter
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// CutOptions controls candidate eligibility for Cut.
type CutOptions struct {
	// AvoidRecursive excludes functions involved in recursion (paper
	// preference: a non-recursive split function needs only one hidden
	// activation record).
	AvoidRecursive bool
	// AvoidLoopCalled excludes functions called from inside loops (paper
	// restriction: avoids splitting functions invoked repeatedly).
	AvoidLoopCalled bool
	// Eligible, if non-nil, further filters candidates (e.g. "has a
	// hideable scalar local").
	Eligible func(qname string) bool
}

// Cut selects a set of functions such that every call path from root to a
// leaf of the call graph passes through a selected function wherever an
// eligible dominator exists. It returns the chosen set and the leaves for
// which no eligible dominator exists (uncovered).
func (g *Graph) Cut(root string, opts CutOptions) (chosen []string, uncovered []string) {
	reach := g.Reachable(root)
	dom := g.Dominators(root)
	eligible := func(f string) bool {
		if opts.AvoidRecursive && g.Recursive[f] {
			return false
		}
		if opts.AvoidLoopCalled && g.LoopCalled[f] {
			return false
		}
		if opts.Eligible != nil && !opts.Eligible(f) {
			return false
		}
		return true
	}
	// Leaves: reachable functions that call nothing (within the program).
	var leaves []string
	for f := range reach {
		hasCallee := false
		for c := range g.Callees[f] {
			if reach[c] {
				hasCallee = true
				break
			}
		}
		if !hasCallee {
			leaves = append(leaves, f)
		}
	}
	if len(leaves) == 0 {
		leaves = []string{root}
	}
	sort.Strings(leaves)
	// Candidate -> leaves it covers (candidate dominates leaf).
	covers := map[string][]string{}
	for f := range reach {
		if !eligible(f) {
			continue
		}
		for _, l := range leaves {
			if dom[l][f] {
				covers[f] = append(covers[f], l)
			}
		}
	}
	// Greedy set cover, deterministic tie-break by name.
	need := map[string]bool{}
	for _, l := range leaves {
		need[l] = true
	}
	for len(need) > 0 {
		best, bestCount := "", 0
		var cands []string
		for c := range covers {
			cands = append(cands, c)
		}
		sort.Strings(cands)
		for _, c := range cands {
			count := 0
			for _, l := range covers[c] {
				if need[l] {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = c, count
			}
		}
		if best == "" {
			break
		}
		chosen = append(chosen, best)
		for _, l := range covers[best] {
			delete(need, l)
		}
		delete(covers, best)
	}
	for l := range need {
		uncovered = append(uncovered, l)
	}
	sort.Strings(chosen)
	sort.Strings(uncovered)
	return chosen, uncovered
}

// String renders the call graph edges, sorted, for tests and debugging.
func (g *Graph) String() string {
	var lines []string
	for caller, callees := range g.Callees {
		var cs []string
		for c := range callees {
			cs = append(cs, c)
		}
		sort.Strings(cs)
		lines = append(lines, fmt.Sprintf("%s -> [%s]", caller, strings.Join(cs, " ")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
