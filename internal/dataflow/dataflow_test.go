package dataflow

import (
	"testing"

	"slicehide/internal/cfg"
	"slicehide/internal/ir"
)

func analyze(t *testing.T, src, name string) (*cfg.Graph, *Result) {
	t.Helper()
	p, err := ir.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := p.Func(name)
	if f == nil {
		t.Fatalf("no func %s", name)
	}
	g := cfg.Build(f)
	return g, Reaching(g)
}

func findVar(t *testing.T, f *ir.Func, name string) *ir.Var {
	t.Helper()
	if v := f.LookupVar(name); v != nil {
		return v
	}
	t.Fatalf("no var %s", name)
	return nil
}

func TestStraightLineChains(t *testing.T) {
	g, r := analyze(t, `
func f(x: int): int {
    var a: int = x + 1;
    var b: int = a * 2;
    a = b + 3;
    return a;
}`, "f")
	f := g.Func
	a := findVar(t, f, "a")
	// Use of a at stmt 1 must see only the def at stmt 0.
	n1 := g.ByStmt[1]
	defs := r.DefsReachingUse(n1, a)
	if len(defs) != 1 || defs[0].Node.Stmt.ID() != 0 {
		t.Errorf("defs of a at s1: %v", defs)
	}
	// Use of a at return must see only the def at stmt 2 (s0 killed).
	ret := g.ByStmt[3]
	defs = r.DefsReachingUse(ret, a)
	if len(defs) != 1 || defs[0].Node.Stmt.ID() != 2 {
		t.Errorf("defs of a at return: %v", defs)
	}
}

func TestBranchMerge(t *testing.T) {
	g, r := analyze(t, `
func f(c: bool): int {
    var a: int = 1;
    if (c) { a = 2; } else { a = 3; }
    return a;
}`, "f")
	a := findVar(t, g.Func, "a")
	ret := g.ByStmt[4]
	defs := r.DefsReachingUse(ret, a)
	if len(defs) != 2 {
		t.Fatalf("expected 2 reaching defs at merge, got %v", defs)
	}
	ids := map[int]bool{}
	for _, d := range defs {
		ids[d.Node.Stmt.ID()] = true
	}
	if !ids[2] || !ids[3] {
		t.Errorf("reaching defs: %v", defs)
	}
}

func TestLoopCarriedDependence(t *testing.T) {
	g, r := analyze(t, `
func f(n: int): int {
    var s: int = 0;
    var i: int = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}`, "f")
	s := findVar(t, g.Func, "s")
	// Use of s inside the loop (s = s + i at stmt 3) sees both the init
	// (stmt 0) and the loop-carried def (stmt 3 itself).
	body := g.ByStmt[3]
	defs := r.DefsReachingUse(body, s)
	if len(defs) != 2 {
		t.Fatalf("loop-carried defs of s: %v", defs)
	}
}

func TestParamImplicitDef(t *testing.T) {
	g, r := analyze(t, `func f(x: int): int { return x + 1; }`, "f")
	x := findVar(t, g.Func, "x")
	ret := g.ByStmt[0]
	defs := r.DefsReachingUse(ret, x)
	if len(defs) != 1 || !defs[0].Implicit || defs[0].Node != g.Entry {
		t.Errorf("param def: %v", defs)
	}
}

func TestArrayWeakUpdate(t *testing.T) {
	g, r := analyze(t, `
func f(): int {
    var a: int[] = new int[4];
    a[0] = 1;
    a[1] = 2;
    return a[0];
}`, "f")
	ret := g.ByStmt[3]
	// The read a[0] must see both element stores (weak updates) plus the
	// entry def of the pseudo-var.
	var elemDefs []*Def
	for v, ds := range r.UD[ret] {
		if v.Kind == ir.VarElems {
			elemDefs = ds
		}
	}
	explicit := 0
	for _, d := range elemDefs {
		if !d.Implicit {
			explicit++
		}
	}
	if explicit != 2 {
		t.Errorf("element read should see 2 stores, got %v", elemDefs)
	}
}

func TestCallClobbersGlobals(t *testing.T) {
	g, r := analyze(t, `
var g: int = 0;
func h() { g = 5; }
func f(): int {
    g = 1;
    h();
    return g;
}`, "f")
	var gv *ir.Var
	for v := range r.UD[g.ByStmt[2]] {
		if v.Kind == ir.VarGlobal {
			gv = v
		}
	}
	if gv == nil {
		t.Fatal("global use not found")
	}
	defs := r.DefsReachingUse(g.ByStmt[2], gv)
	// g=1 is killed... no: the call creates a def but does not kill, so
	// both g=1 and the call-def reach. At minimum the call def must be there.
	foundCallDef := false
	for _, d := range defs {
		if d.Implicit && d.Node.Stmt != nil {
			foundCallDef = true
		}
	}
	if !foundCallDef {
		t.Errorf("call should define global: %v", defs)
	}
}

func TestCallDoesNotClobberLocals(t *testing.T) {
	g, r := analyze(t, `
func h() { }
func f(): int {
    var a: int = 1;
    h();
    return a;
}`, "f")
	a := findVar(t, g.Func, "a")
	defs := r.DefsReachingUse(g.ByStmt[2], a)
	if len(defs) != 1 || defs[0].Implicit {
		t.Errorf("local must have exactly its explicit def: %v", defs)
	}
}

func TestDUChainsInverse(t *testing.T) {
	g, r := analyze(t, `
func f(x: int): int {
    var a: int = x;
    var b: int = a + a;
    return b;
}`, "f")
	// Every UD entry must appear in DU and vice versa.
	for n, m := range r.UD {
		for _, defs := range m {
			for _, d := range defs {
				found := false
				for _, u := range r.DU[d] {
					if u == n {
						found = true
					}
				}
				if !found {
					t.Errorf("DU missing %v -> s%d", d, n.Stmt.ID())
				}
			}
		}
	}
	_ = g
}

func TestLiveness(t *testing.T) {
	p, err := ir.Compile(`
func f(x: int, y: int): int {
    var a: int = x + 1;
    var b: int = 2;
    if (a > 0) {
        b = y;
    }
    return a + b;
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := p.Func("f")
	g := cfg.Build(f)
	l := Live(g)
	x := f.LookupVar("x")
	y := f.LookupVar("y")
	a := f.LookupVar("a")
	if !l.LiveAtEntry(x) || !l.LiveAtEntry(y) {
		t.Error("params used later must be live at entry")
	}
	if l.LiveAtEntry(a) {
		t.Error("a is defined before use; must not be live at entry")
	}
	// After the if (at return), a and b are live-in.
	ret := g.ByStmt[4]
	if !l.LiveIn[ret][a] {
		t.Error("a must be live at return")
	}
	if l.LiveIn[ret][x] {
		t.Error("x must be dead at return")
	}
}

func TestLivenessLoop(t *testing.T) {
	p := ir.MustCompile(`
func f(n: int): int {
    var s: int = 0;
    var i: int = 0;
    while (i < n) {
        s = s + i;
        i = i + 1;
    }
    return s;
}`)
	f := p.Func("f")
	g := cfg.Build(f)
	l := Live(g)
	s := f.LookupVar("s")
	i := f.LookupVar("i")
	cond := g.ByStmt[2]
	if !l.LiveIn[cond][s] || !l.LiveIn[cond][i] {
		t.Error("s and i must be live at loop condition")
	}
}

func TestResultStringStable(t *testing.T) {
	_, r := analyze(t, `func f(x: int): int { var a: int = x; return a; }`, "f")
	s1, s2 := r.String(), r.String()
	if s1 != s2 || s1 == "" {
		t.Errorf("unstable or empty chain dump:\n%s", s1)
	}
}
