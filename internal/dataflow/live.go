package dataflow

import (
	"slicehide/internal/cfg"
	"slicehide/internal/ir"
)

// Liveness holds live-variable facts: LiveIn[n] is the set of variables
// whose values may be used before redefinition on some path from n.
type Liveness struct {
	Graph   *cfg.Graph
	LiveIn  map[*cfg.Node]map[*ir.Var]bool
	LiveOut map[*cfg.Node]map[*ir.Var]bool
}

// Live computes live variables for g (backward may analysis).
func Live(g *cfg.Graph) *Liveness {
	l := &Liveness{
		Graph:   g,
		LiveIn:  make(map[*cfg.Node]map[*ir.Var]bool, len(g.Nodes)),
		LiveOut: make(map[*cfg.Node]map[*ir.Var]bool, len(g.Nodes)),
	}
	use := make(map[*cfg.Node][]*ir.Var)
	def := make(map[*cfg.Node]*ir.Var)
	for _, n := range g.Nodes {
		l.LiveIn[n] = map[*ir.Var]bool{}
		l.LiveOut[n] = map[*ir.Var]bool{}
		if n.Stmt == nil {
			continue
		}
		use[n] = ir.UsedVars(n.Stmt)
		if v := ir.DefinedVar(n.Stmt); v != nil {
			switch v.Kind {
			case ir.VarLocal, ir.VarParam, ir.VarGlobal:
				def[n] = v // only strong defs remove liveness
			}
		}
	}
	changed := true
	for changed {
		changed = false
		// Reverse order converges faster for a backward analysis.
		for i := len(g.Nodes) - 1; i >= 0; i-- {
			n := g.Nodes[i]
			out := l.LiveOut[n]
			for _, s := range n.Succs {
				for v := range l.LiveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := l.LiveIn[n]
			for _, v := range use[n] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if v != def[n] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	return l
}

// LiveAtEntry reports whether v is live at function entry.
func (l *Liveness) LiveAtEntry(v *ir.Var) bool { return l.LiveIn[l.Graph.Entry][v] }
