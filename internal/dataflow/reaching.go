// Package dataflow implements the intraprocedural dataflow analyses used by
// the slicer and the splitting transformation: reaching definitions, def-use
// and use-def chains, and live variables.
//
// Aggregates are handled conservatively through pseudo-variables (see
// ir.VarElems / ir.VarHeap): stores into array elements or object fields are
// weak updates (they kill nothing), and any call is treated as a potential
// definition of every global, field, and aggregate pseudo-variable.
package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"slicehide/internal/cfg"
	"slicehide/internal/ir"
)

// Def is a definition site: a variable defined at a CFG node. Implicit defs
// model values that exist on function entry (parameters, globals, fields,
// array contents) and definitions performed by calls.
type Def struct {
	// Index is the def's position in Result.Defs.
	Index int
	// Node is the defining node; the graph's entry node for implicit defs.
	Node *cfg.Node
	// Var is the variable defined.
	Var *ir.Var
	// Implicit is true for entry defs and call-side-effect defs.
	Implicit bool
}

func (d *Def) String() string {
	tag := ""
	if d.Implicit {
		tag = "~"
	}
	if d.Node.Stmt == nil {
		return fmt.Sprintf("%s%s@entry", tag, d.Var)
	}
	return fmt.Sprintf("%s%s@s%d", tag, d.Var, d.Node.Stmt.ID())
}

// Result holds reaching-definition facts for one function.
type Result struct {
	Graph *cfg.Graph
	Defs  []*Def
	// In maps each node to the set of defs reaching its entry.
	In map[*cfg.Node][]*Def
	// UD maps each node and used variable to the defs that reach the use.
	UD map[*cfg.Node]map[*ir.Var][]*Def
	// DU maps each def to the nodes whose uses it reaches.
	DU map[*Def][]*cfg.Node

	defsOf map[*cfg.Node][]*Def
}

// DefsAt returns the definitions performed at node n (explicit and
// call-side-effect defs).
func (r *Result) DefsAt(n *cfg.Node) []*Def { return r.defsOf[n] }

// mutatedByCall lists the variable classes a call may define: all globals,
// all class fields, all elems pseudo-vars, and the heap. Locals and params
// of the analyzed function are unaffected (MiniJ has no pointers to locals).
func mutatedByCall(vars []*ir.Var) []*ir.Var {
	var out []*ir.Var
	for _, v := range vars {
		switch v.Kind {
		case ir.VarGlobal, ir.VarField, ir.VarElems, ir.VarHeap:
			out = append(out, v)
		}
	}
	return out
}

// stmtHasCall reports whether node n's statement contains a call.
func stmtHasCall(n *cfg.Node) bool {
	if n.Stmt == nil {
		return false
	}
	found := false
	ir.StmtExprs(n.Stmt, func(e ir.Expr) {
		if ir.HasCall(e) {
			found = true
		}
	})
	return found
}

// collectVars returns every variable referenced (used or defined) in the
// function, in first-appearance order.
func collectVars(g *cfg.Graph) []*ir.Var {
	var vars []*ir.Var
	seen := map[*ir.Var]bool{}
	add := func(v *ir.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for _, p := range g.Func.Params {
		add(p)
	}
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		add(ir.DefinedVar(n.Stmt))
		for _, v := range ir.UsedVars(n.Stmt) {
			add(v)
		}
	}
	return vars
}

// Reaching computes reaching definitions and def-use chains for g.
func Reaching(g *cfg.Graph) *Result {
	r := &Result{
		Graph:  g,
		In:     make(map[*cfg.Node][]*Def),
		UD:     make(map[*cfg.Node]map[*ir.Var][]*Def),
		DU:     make(map[*Def][]*cfg.Node),
		defsOf: make(map[*cfg.Node][]*Def),
	}
	vars := collectVars(g)

	addDef := func(n *cfg.Node, v *ir.Var, implicit bool) *Def {
		d := &Def{Index: len(r.Defs), Node: n, Var: v, Implicit: implicit}
		r.Defs = append(r.Defs, d)
		r.defsOf[n] = append(r.defsOf[n], d)
		return d
	}

	// Implicit entry defs: parameters, globals, fields, aggregates. These
	// model the values flowing in from outside the function.
	for _, v := range vars {
		switch v.Kind {
		case ir.VarParam, ir.VarGlobal, ir.VarField, ir.VarElems, ir.VarHeap:
			addDef(g.Entry, v, true)
		}
	}
	// Explicit defs and call side effects.
	for _, n := range g.Nodes {
		if n.Stmt == nil {
			continue
		}
		if v := ir.DefinedVar(n.Stmt); v != nil {
			addDef(n, v, false)
		}
		if stmtHasCall(n) {
			dv := ir.DefinedVar(n.Stmt)
			for _, v := range mutatedByCall(vars) {
				if v != dv {
					addDef(n, v, true)
				}
			}
		}
	}

	nd := len(r.Defs)
	gen := make(map[*cfg.Node]bitset)
	kill := make(map[*cfg.Node]bitset)
	// Group def indices by variable for kill computation.
	byVar := make(map[*ir.Var][]int)
	for _, d := range r.Defs {
		byVar[d.Var] = append(byVar[d.Var], d.Index)
	}
	strong := func(v *ir.Var) bool {
		switch v.Kind {
		case ir.VarLocal, ir.VarParam, ir.VarGlobal:
			return true
		}
		return false // elems/field/heap stores are weak updates
	}
	for _, n := range g.Nodes {
		gen[n] = newBitset(nd)
		kill[n] = newBitset(nd)
		for _, d := range r.defsOf[n] {
			gen[n].set(d.Index)
			// Only an explicit assignment to a scalar-like variable kills;
			// implicit call-defs and aggregate stores are weak.
			if !d.Implicit && strong(d.Var) {
				for _, j := range byVar[d.Var] {
					if j != d.Index {
						kill[n].set(j)
					}
				}
			}
		}
	}

	// Iterate to fixpoint: In[n] = union of Out[p]; Out[n] = gen ∪ (In−kill).
	in := make(map[*cfg.Node]bitset)
	out := make(map[*cfg.Node]bitset)
	for _, n := range g.Nodes {
		in[n] = newBitset(nd)
		out[n] = newBitset(nd)
	}
	changed := true
	tmp := newBitset(nd)
	for changed {
		changed = false
		for _, n := range g.Nodes {
			tmp.zero()
			for _, p := range n.Preds {
				tmp.union(out[p])
			}
			in[n].copyFrom(tmp)
			// out = gen ∪ (in − kill)
			tmp.subtract(kill[n])
			tmp.union(gen[n])
			if !tmp.equal(out[n]) {
				out[n].copyFrom(tmp)
				changed = true
			}
		}
	}

	// Materialize In sets and UD/DU chains.
	for _, n := range g.Nodes {
		var reach []*Def
		for i := 0; i < nd; i++ {
			if in[n].has(i) {
				reach = append(reach, r.Defs[i])
			}
		}
		r.In[n] = reach
		if n.Stmt == nil {
			continue
		}
		used := ir.UsedVars(n.Stmt)
		if len(used) == 0 {
			continue
		}
		m := make(map[*ir.Var][]*Def)
		for _, v := range used {
			for _, d := range reach {
				if d.Var == v {
					m[v] = append(m[v], d)
					r.DU[d] = append(r.DU[d], n)
				}
			}
		}
		r.UD[n] = m
	}
	return r
}

// DefsReachingUse returns the defs of v that reach the use at node n.
func (r *Result) DefsReachingUse(n *cfg.Node, v *ir.Var) []*Def {
	if m, ok := r.UD[n]; ok {
		return m[v]
	}
	return nil
}

// String renders the def-use chains for debugging and golden tests.
func (r *Result) String() string {
	var lines []string
	for d, uses := range r.DU {
		ids := make([]string, len(uses))
		for i, u := range uses {
			ids[i] = fmt.Sprintf("s%d", u.Stmt.ID())
		}
		sort.Strings(ids)
		lines = append(lines, fmt.Sprintf("%s -> {%s}", d, strings.Join(ids, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// ---------------------------------------------------------------------------

type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

func (b bitset) zero() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) copyFrom(o bitset) { copy(b, o) }

func (b bitset) union(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

func (b bitset) subtract(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}
