package slicehide

// Concurrent-load benchmarks for the sharded hidden server. The
// BenchmarkLoadDirect* pair measures shard contention in isolation —
// b.RunParallel goroutines each own a session and hammer CallSession with
// no sockets in the way — while TestWriteLoadBenchJSON drives the full
// socket harness (internal/experiments.RunLoad) to regenerate the
// committed BENCH_load.json. Run with:
//
//	make bench-load

import (
	"flag"
	"runtime"
	"sync/atomic"
	"testing"

	"slicehide/internal/experiments"
	"slicehide/internal/hrt"
	"slicehide/internal/interp"
)

// loadBenchSrc mirrors the load harness's default workload: fragments of
// a few arithmetic statements, so server-side locking rather than
// fragment execution dominates.
const loadBenchSrc = `
func work(x: int, y: int): int {
    var k: int = x * 3 + y;
    var t: int = k + x;
    return t - y;
}
func main() { print(work(2, 1)); }
`

// loadBenchSplit compiles and splits the workload, returning the split
// plus the lowest-numbered fragment and a matching argument vector.
func loadBenchSplit(tb testing.TB) (*SplitResult, int, []interp.Value) {
	prog, err := Compile(loadBenchSrc)
	if err != nil {
		tb.Fatal(err)
	}
	res, err := Split(prog, []Spec{{Func: "work", Seed: "k"}})
	if err != nil {
		tb.Fatal(err)
	}
	sf, ok := res.Splits["work"]
	if !ok {
		tb.Fatal("no split for work")
	}
	fragID := -1
	for id := range sf.Hidden.Frags {
		if fragID < 0 || id < fragID {
			fragID = id
		}
	}
	if fragID < 0 {
		tb.Fatal("split produced no fragments")
	}
	args := make([]interp.Value, len(sf.Hidden.Frags[fragID].ArgVars))
	for i := range args {
		args[i] = interp.IntV(int64(i%5 + 1))
	}
	return res, fragID, args
}

// benchLoadDirect runs GOMAXPROCS goroutines, each owning one session,
// against a server with the given stripe count. Serial (1 stripe) vs
// sharded (GOMAXPROCS stripes) isolates what the striping buys once the
// codec and sockets are out of the picture.
func benchLoadDirect(b *testing.B, shards int) {
	res, fragID, args := loadBenchSplit(b)
	server := hrt.NewServerShards(hrt.NewRegistry(res), shards)
	var sessions atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		session := sessions.Add(1)
		inst, err := server.EnterSession(session, "work", 0, 0)
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			if _, err := server.CallSession(session, "work", inst, fragID, args); err != nil {
				b.Error(err)
				return
			}
		}
		if err := server.ExitSession(session, "work", inst); err != nil {
			b.Error(err)
		}
	})
}

func BenchmarkLoadDirectSerial(b *testing.B)  { benchLoadDirect(b, 1) }
func BenchmarkLoadDirectSharded(b *testing.B) { benchLoadDirect(b, runtime.GOMAXPROCS(0)) }

// benchExecMode is the single-session direct-dispatch loop under one
// execution engine: no contention, no sockets — just the cost of one
// hidden fragment call end to end through CallSession.
func benchExecMode(b *testing.B, mode interp.ExecMode) {
	res, fragID, args := loadBenchSplit(b)
	server := hrt.NewServer(hrt.NewRegistry(res))
	server.SetExecMode(mode)
	inst, err := server.EnterSession(1, "work", 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.CallSession(1, "work", inst, fragID, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVMVsInterp is the execution-engine micro-pair: the compiled
// bytecode VM against the tree-walking oracle on the same fragment.
func BenchmarkVMVsInterp(b *testing.B) {
	b.Run("vm", func(b *testing.B) { benchExecMode(b, interp.ExecVM) })
	b.Run("interp", func(b *testing.B) { benchExecMode(b, interp.ExecInterp) })
}

// benchLoadJSONPath makes `make bench-load` emit the machine-readable
// throughput report:
//
//	go test -run TestWriteLoadBenchJSON -bench-load-json BENCH_load.json .
var benchLoadJSONPath = flag.String("bench-load-json", "", "write BENCH_load.json-style report to this path")

// TestWriteLoadBenchJSON regenerates the committed BENCH_load.json when
// invoked with -bench-load-json (skipped otherwise, so plain `go test`
// stays fast): the pipelined socket workload at {1, 4} GOMAXPROCS ×
// {1 shard, 8 shards}, plus multiplexed rows — including the
// 10k-sessions-over-shared-connections point.
func TestWriteLoadBenchJSON(t *testing.T) {
	if *benchLoadJSONPath == "" {
		t.Skip("pass -bench-load-json <path> to write the load report")
	}
	cfg := experiments.LoadConfig{
		Sessions:     8,
		Ops:          4000,
		Pipeline:     true,
		Window:       128,
		BarrierEvery: 64,
	}
	if err := experiments.WriteLoadBenchJSONFile(*benchLoadJSONPath, cfg, 8); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *benchLoadJSONPath)
}

// TestLoadSmoke is the `make bench-load-quick` gate: a small concurrent
// run through the real socket harness in both transport modes and both
// stripe configurations, checking every session completed every op.
func TestLoadSmoke(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  experiments.LoadConfig
	}{
		{"sync/serial", experiments.LoadConfig{Sessions: 4, Ops: 50, Shards: 1}},
		{"sync/sharded", experiments.LoadConfig{Sessions: 4, Ops: 50, Shards: 4}},
		{"pipelined/serial", experiments.LoadConfig{Sessions: 4, Ops: 50, Shards: 1, Pipeline: true, BarrierEvery: 8}},
		{"pipelined/sharded", experiments.LoadConfig{Sessions: 4, Ops: 50, Shards: 4, Pipeline: true, BarrierEvery: 8}},
		{"sync/interp", experiments.LoadConfig{Sessions: 4, Ops: 50, Shards: 4, ExecMode: "interp"}},
		{"mux/sharded", experiments.LoadConfig{Sessions: 8, Ops: 50, Shards: 4, Mux: true, BarrierEvery: 8}},
		{"mux/sharedConns", experiments.LoadConfig{Sessions: 32, Ops: 20, Shards: 4, Mux: true, MuxConns: 2, BarrierEvery: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := experiments.RunLoad(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want := int64(tc.cfg.Sessions) * int64(tc.cfg.Ops); r.TotalOps != want {
				t.Errorf("TotalOps = %d, want %d", r.TotalOps, want)
			}
			if tc.cfg.Mux {
				if r.Mode != "mux" {
					t.Errorf("Mode = %q, want mux", r.Mode)
				}
				if tc.cfg.MuxConns > 0 && r.MuxConns != tc.cfg.MuxConns {
					t.Errorf("MuxConns = %d, want %d", r.MuxConns, tc.cfg.MuxConns)
				}
			}
			if r.OpsPerSec <= 0 {
				t.Errorf("OpsPerSec = %v, want > 0", r.OpsPerSec)
			}
			if r.Blocking.Count == 0 {
				t.Error("no blocking operations recorded")
			}
			t.Logf("%s: %.0f ops/sec, blocking p99 %dns", tc.name, r.OpsPerSec, r.Blocking.P99Ns)
		})
	}
}
