package slicehide

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§4) plus the measured §3 attack experiment and the ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Table-shaped output is emitted via b.Log (visible with -v); numeric
// summaries are attached as custom benchmark metrics so regressions are
// visible in benchstat diffs.

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"slicehide/internal/attack"
	"slicehide/internal/complexity"
	"slicehide/internal/core"
	"slicehide/internal/corpus"
	"slicehide/internal/experiments"
	"slicehide/internal/hrt"
	"slicehide/internal/interp"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

// benchCfg is the experiment configuration used by the table benchmarks:
// paper-scale corpora, kernels reduced 4x to keep a full -bench=. run in
// minutes, the default 200µs LAN round trip.
func benchCfg() experiments.Config {
	cfg := experiments.Defaults()
	cfg.KernelScale = 4
	return cfg
}

// ---------------------------------------------------------------------------
// Table 1 — opportunities for hiding whole methods (E1)

func BenchmarkTable1SelfContained(b *testing.B) {
	cfg := benchCfg()
	var rows []core.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(cfg)
	}
	b.Log("\n" + experiments.RenderTable1(rows))
	total, sc := 0, 0
	for _, r := range rows {
		total += r.Methods
		sc += r.SelfContained
	}
	b.ReportMetric(float64(total), "methods")
	b.ReportMetric(float64(sc), "self-contained")
}

// ---------------------------------------------------------------------------
// Tables 2, 3, 4 — split characteristics and ILP complexity (E2–E4)

func benchTables234(b *testing.B, cfg experiments.Config) []experiments.BenchmarkSplit {
	var splits []experiments.BenchmarkSplit
	var err error
	for i := 0; i < b.N; i++ {
		splits, err = experiments.Tables234(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return splits
}

func BenchmarkTable2SplitCharacteristics(b *testing.B) {
	splits := benchTables234(b, benchCfg())
	b.Log("\n" + experiments.RenderTable2(splits))
	methods, stmts, ilps := 0, 0, 0
	for _, s := range splits {
		methods += s.MethodsSliced
		stmts += s.SliceStatements
		ilps += s.ILPs
	}
	b.ReportMetric(float64(methods), "methods-sliced")
	b.ReportMetric(float64(stmts), "slice-stmts")
	b.ReportMetric(float64(ilps), "ILPs")
}

func BenchmarkTable3ArithmeticComplexity(b *testing.B) {
	splits := benchTables234(b, benchCfg())
	b.Log("\n" + experiments.RenderTable3(splits))
	var lin, arb, poly, rat int
	for _, s := range splits {
		lin += s.T3.Linear
		arb += s.T3.Arbitrary
		poly += s.T3.Polynomial
		rat += s.T3.Rational
	}
	b.ReportMetric(float64(lin), "linear")
	b.ReportMetric(float64(poly), "polynomial")
	b.ReportMetric(float64(rat), "rational")
	b.ReportMetric(float64(arb), "arbitrary")
}

func BenchmarkTable4ControlFlowComplexity(b *testing.B) {
	splits := benchTables234(b, benchCfg())
	b.Log("\n" + experiments.RenderTable4(splits))
	var pv, ph, fh int
	for _, s := range splits {
		pv += s.T4.PathsVariable
		ph += s.T4.PredicatesHidden
		fh += s.T4.FlowHidden
	}
	b.ReportMetric(float64(pv), "paths-variable")
	b.ReportMetric(float64(ph), "predicates-hidden")
	b.ReportMetric(float64(fh), "flow-hidden")
}

// ---------------------------------------------------------------------------
// Table 5 — runtime overhead (E5), one benchmark per workload

func benchTable5Kernel(b *testing.B, name string) {
	cfg := benchCfg()
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		k, err := corpus.KernelByName(name)
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		for _, in := range k.Inputs {
			row, err := kernelRow(k, in, cfg)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row)
		}
	}
	b.Log("\n" + experiments.RenderTable5(rows))
	var inter int64
	var pct float64
	for _, r := range rows {
		inter += r.Interactions
		pct += r.PctIncrease
	}
	if len(rows) > 0 {
		b.ReportMetric(float64(inter), "interactions")
		b.ReportMetric(pct/float64(len(rows)), "avg-overhead-%")
	}
}

func kernelRow(k corpus.Kernel, in corpus.KernelInput, cfg experiments.Config) (experiments.Table5Row, error) {
	rows, err := experiments.Table5ForKernel(k, in, cfg)
	if err != nil {
		return experiments.Table5Row{}, err
	}
	return rows, nil
}

func BenchmarkTable5Javac(b *testing.B)  { benchTable5Kernel(b, "javac") }
func BenchmarkTable5Jess(b *testing.B)   { benchTable5Kernel(b, "jess") }
func BenchmarkTable5Jasmin(b *testing.B) { benchTable5Kernel(b, "jasmin") }
func BenchmarkTable5Bloat(b *testing.B)  { benchTable5Kernel(b, "bloat") }

// ---------------------------------------------------------------------------
// Figures 2 and 3 — the paper's worked example (F2, F3)

const figureSrc = `
func f(x: int, y: int, z: int): int {
    var a: int = 3 * x + y;
    var b: int = 0;
    var sum: int = 0;
    var i: int = a;
    var B: int[] = new int[z + 1];
    while (i < z) {
        b = 2 * i;
        sum = sum + b;
        B[i] = b;
        i = i + 1;
    }
    if (sum > 100) {
        sum = sum - 100;
    } else {
        B[0] = x;
    }
    return sum;
}
func main() { print(f(1, 2, 10)); }
`

func BenchmarkFigure2Split(b *testing.B) {
	prog, err := Compile(figureSrc)
	if err != nil {
		b.Fatal(err)
	}
	var res *SplitResult
	for i := 0; i < b.N; i++ {
		res, err = Split(prog, []Spec{{Func: "f", Seed: "a"}})
		if err != nil {
			b.Fatal(err)
		}
	}
	sf := res.Splits["f"]
	b.ReportMetric(float64(len(sf.ILPs)), "ILPs")
	b.ReportMetric(float64(len(sf.Hidden.Frags)), "fragments")
}

func BenchmarkFigure3ComplexityAnalysis(b *testing.B) {
	prog, err := Compile(figureSrc)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Split(prog, []Spec{{Func: "f", Seed: "a"}})
	if err != nil {
		b.Fatal(err)
	}
	var reports []ComplexityReport
	for i := 0; i < b.N; i++ {
		reports = AnalyzeILPs(res.Splits["f"])
	}
	// The paper's ILP④: the fetch of sum at the return is <Polynomial, ·, 2>.
	var sumAC complexity.AC
	for _, r := range reports {
		if vr, ok := r.ILP.HiddenExpr.(*ir.VarRef); ok && vr.Var.Name == "sum" {
			sumAC = r.AC
		}
	}
	if sumAC.Type != complexity.Polynomial {
		b.Fatalf("AC(sum) = %v, want polynomial (paper ILP-4)", sumAC)
	}
	b.ReportMetric(float64(sumAC.Degree), "sum-degree")
}

// ---------------------------------------------------------------------------
// A1 — the measured automated-recovery experiment

func BenchmarkAttackRecoveryMatrix(b *testing.B) {
	cfg := benchCfg()
	var cases []experiments.AttackCase
	var err error
	for i := 0; i < b.N; i++ {
		cases, err = experiments.AttackMatrix(cfg, 20030601)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + experiments.RenderAttack(cases))
	recovered := 0
	for _, c := range cases {
		if c.Recovered {
			recovered++
		}
	}
	b.ReportMetric(float64(recovered), "recovered")
	b.ReportMetric(float64(len(cases)-recovered), "resisted")
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md)

// BenchmarkAblationNoControlFlowHiding measures what §2.2's control-flow
// rules buy: with them disabled, no ILP reports hidden flow and fewer
// report hidden predicates.
func BenchmarkAblationNoControlFlowHiding(b *testing.B) {
	cfg := benchCfg()
	cfg.NoControlFlowHiding = true
	var ablated experiments.BenchmarkSplit
	var err error
	for i := 0; i < b.N; i++ {
		ablated, err = experiments.SplitBenchmarkByName("javac", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ablated.T4.FlowHidden), "flow-hidden")
	b.ReportMetric(float64(ablated.T4.PredicatesHidden), "predicates-hidden")
}

// BenchmarkAblationMinAtUses measures the literal Fig. 3 MIN aggregation
// against the default MAX: MIN collapses most leaks to the constant class.
func BenchmarkAblationMinAtUses(b *testing.B) {
	cfg := benchCfg()
	cfg.MinAtUses = true
	var bs experiments.BenchmarkSplit
	var err error
	for i := 0; i < b.N; i++ {
		bs, err = experiments.SplitBenchmarkByName("javac", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(bs.T3.Constant), "constant")
	b.ReportMetric(float64(bs.T3.Linear), "linear")
}

// BenchmarkAblationRTT sweeps the round-trip latency on one workload row
// (zero / LAN / WAN), isolating communication cost in Table 5.
func BenchmarkAblationRTT(b *testing.B) {
	for _, rtt := range []time.Duration{0, 200 * time.Microsecond, 5 * time.Millisecond} {
		b.Run(fmt.Sprintf("rtt=%s", rtt), func(b *testing.B) {
			cfg := benchCfg()
			cfg.RTT = rtt
			cfg.KernelScale = 10
			k, err := corpus.KernelByName("javac")
			if err != nil {
				b.Fatal(err)
			}
			var row experiments.Table5Row
			for i := 0; i < b.N; i++ {
				row, err = experiments.Table5ForKernel(k, k.Inputs[0], cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.PctIncrease, "overhead-%")
		})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the core phases

func BenchmarkMicroCompile(b *testing.B) {
	src := corpus.Kernels()[0].Source(1000)
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSlice(b *testing.B) {
	prog, err := Compile(figureSrc)
	if err != nil {
		b.Fatal(err)
	}
	f := prog.Func("f")
	seed := f.LookupVar("a")
	for i := 0; i < b.N; i++ {
		slicer.Compute(f, seed, slicer.Policy{})
	}
}

func BenchmarkMicroInterp(b *testing.B) {
	prog, err := Compile(corpus.Kernels()[0].Source(2000))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := RunOriginal(prog, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroFragmentCall(b *testing.B) {
	prog, err := Compile(figureSrc)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Split(prog, []Spec{{Func: "f", Seed: "a"}})
	if err != nil {
		b.Fatal(err)
	}
	server := hrt.NewServer(hrt.NewRegistry(res))
	inst, err := server.Enter("f", 0)
	if err != nil {
		b.Fatal(err)
	}
	defer server.Exit("f", inst)
	// Fragment 0 initializes a from (x, y).
	args := []interp.Value{interp.IntV(1), interp.IntV(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Call("f", inst, 0, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroTCPRoundTrip(b *testing.B) {
	prog, err := Compile(figureSrc)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Split(prog, []Spec{{Func: "f", Seed: "a"}})
	if err != nil {
		b.Fatal(err)
	}
	ts := &hrt.TCPServer{Server: hrt.NewServer(hrt.NewRegistry(res))}
	addr, err := ts.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ts.Close()
	tr, err := hrt.DialTCP(addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer tr.Close()
	sess := &hrt.Session{T: tr}
	inst, err := sess.Enter("f", 0)
	if err != nil {
		b.Fatal(err)
	}
	args := []interp.Value{interp.IntV(1), interp.IntV(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Call("f", inst, 0, args); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroLinearRecovery(b *testing.B) {
	samples := make([]attack.Sample, 200)
	for i := range samples {
		x, y := float64(i%17)-8, float64((i*7)%23)-11
		samples[i] = attack.Sample{Inputs: []float64{x, y}, Output: 3*x - 2*y + 9}
	}
	samples = attack.Dedup(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := attack.TryRecover(samples, attack.RecoveryOptions{})
		if !res.Recovered {
			b.Fatal("linear recovery failed")
		}
	}
}

func BenchmarkMicroSelfContainedAnalysis(b *testing.B) {
	prog := corpus.MustCompile(corpus.Profiles[4].Scale(0.2)) // jfig-like
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AnalyzeProgram("jfig", prog)
	}
}

// BenchmarkAblationPipelining compares the synchronous latency model
// (every hidden request blocks one RTT, the paper's deployment) against
// the pipelined transport (reply-free requests stream one-way; only
// reply-bearing requests and barriers block) on an update-heavy kernel at
// the LAN RTT. The headline metrics are the blocking counts — operations
// that paid a full round trip in each mode — and the wall-clock overhead
// of each mode over the unsplit baseline.
func BenchmarkAblationPipelining(b *testing.B) {
	cfg := benchCfg()
	k, err := corpus.KernelByName("jasmin")
	if err != nil {
		b.Fatal(err)
	}
	var row experiments.Table5Row
	for i := 0; i < b.N; i++ {
		row, err = experiments.Table5ForKernel(k, k.Inputs[0], cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if row.PipelinedBlocking > row.Blocking {
		b.Fatalf("pipelining increased blocking operations: %d vs %d",
			row.PipelinedBlocking, row.Blocking)
	}
	b.ReportMetric(float64(row.Blocking), "blocking-sync")
	b.ReportMetric(float64(row.PipelinedBlocking), "blocking-pipelined")
	b.ReportMetric(row.PctIncrease, "overhead-sync-%")
	b.ReportMetric(row.PipelinedPct, "overhead-pipelined-%")
}

// benchJSONPath makes `make bench` emit the machine-readable report:
//
//	go test -run TestWriteBenchJSON -bench-json BENCH_hrt.json .
var benchJSONPath = flag.String("bench-json", "", "write BENCH_hrt.json-style report to this path")

// TestWriteBenchJSON regenerates the committed BENCH_hrt.json when invoked
// with -bench-json (it is skipped otherwise, so plain `go test` stays fast
// and deterministic).
func TestWriteBenchJSON(t *testing.T) {
	if *benchJSONPath == "" {
		t.Skip("pass -bench-json <path> to write the benchmark report")
	}
	cfg := benchCfg()
	if err := experiments.WriteBenchJSONFile(*benchJSONPath, cfg); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", *benchJSONPath)
}

// TestPipelineSmoke is the `make bench-quick` gate: at test scale it checks
// every kernel row still produces byte-identical output in both transport
// modes and that pipelining never blocks more often than the synchronous
// transport.
func TestPipelineSmoke(t *testing.T) {
	cfg := experiments.Fast()
	rows, err := experiments.Table5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var syncTotal, pipeTotal int64
	for _, r := range rows {
		if r.Excluded {
			continue
		}
		if r.PipelinedBlocking > r.Blocking {
			t.Errorf("%s/%s: pipelined blocking %d > sync blocking %d",
				r.Benchmark, r.Input, r.PipelinedBlocking, r.Blocking)
		}
		syncTotal += r.Blocking
		pipeTotal += r.PipelinedBlocking
	}
	// Individual rows can be too small to save anything at test scale, but
	// across the kernel corpus pipelining must strictly reduce the number
	// of operations that pay a round trip.
	if pipeTotal >= syncTotal {
		t.Errorf("pipelining saved nothing overall: %d blocking vs %d sync", pipeTotal, syncTotal)
	}
	t.Logf("blocking operations: sync=%d pipelined=%d", syncTotal, pipeTotal)
}

// BenchmarkAblationBatching measures the call-batching optimization:
// adjacent non-leaking hidden calls merged into single round trips. The
// metric of interest is the interaction count (communication dominates the
// Table 5 overhead, so fewer round trips means proportionally less cost).
func BenchmarkAblationBatching(b *testing.B) {
	prog, err := Compile(figureSrc)
	if err != nil {
		b.Fatal(err)
	}
	run := func(batch bool) int64 {
		res, err := SplitWith(prog, []Spec{{Func: "f", Seed: "a"}}, Policy{}, Options{BatchCalls: batch})
		if err != nil {
			b.Fatal(err)
		}
		out := RunSplit(res, nil, 1_000_000)
		if out.Err != nil {
			b.Fatal(out.Err)
		}
		return out.Interactions
	}
	var plain, batched int64
	for i := 0; i < b.N; i++ {
		plain = run(false)
		batched = run(true)
	}
	if batched >= plain {
		b.Fatalf("batching did not reduce interactions: %d vs %d", batched, plain)
	}
	b.ReportMetric(float64(plain), "interactions-plain")
	b.ReportMetric(float64(batched), "interactions-batched")
}
