module slicehide

go 1.22
