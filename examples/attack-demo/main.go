// Attack demo: the adversary's side of the story (§3). Two functions are
// split; the adversary observes every value crossing the open↔hidden
// boundary and tries to reconstruct the hidden fragments using linear
// regression, polynomial interpolation, and rational fitting.
//
// The linear leak falls immediately; the hidden-control-flow leak mixes
// samples from different paths and resists every hypothesis family —
// exactly the contrast the paper's security analysis predicts.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"slicehide/internal/attack"
	"slicehide/internal/core"
	"slicehide/internal/hrt"
	"slicehide/internal/interp"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

const weakSrc = `
// Weak hiding: the hidden slice computes a pure linear form of values the
// adversary can see being sent.
func price(units: int, rate: int): int {
    var total: int = units * 12 + rate * 3 + 250;
    var out: int[] = new int[1];
    out[0] = total;
    return out[0];
}
func main() { }
`

const strongSrc = `
// Strong hiding: the hidden slice iterates a data-dependent number of
// times under a hidden predicate with a mod-guarded branch.
func digest(seed: int, rounds: int): int {
    var h: int = seed * 2 + 1;
    var i: int = 0;
    while (i < rounds) {
        if (h % 3 == 0) { h = h / 3 + seed; } else { h = h * 2 - i; }
        i = i + 1;
    }
    return h;
}
func main() { }
`

func attackFunc(label, src, fn, seedVar string, drive func(in *interp.Interp, rng *rand.Rand) error) {
	prog, err := ir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.SplitProgram(prog, []core.Spec{{Func: fn, Seed: seedVar}}, slicer.Policy{})
	if err != nil {
		log.Fatal(err)
	}
	server := hrt.NewServer(hrt.NewRegistry(res))
	obs := attack.NewObserver(&hrt.Local{Server: server}, 4)
	in := interp.New(res.Open, interp.Options{
		Hidden:     &hrt.Session{T: obs},
		SplitFuncs: res.SplitSet(),
		MaxSteps:   100_000_000,
	})
	rng := rand.New(rand.NewSource(42))
	if err := drive(in, rng); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s ===\n", label)
	results := obs.AttackAll(attack.RecoveryOptions{})
	for _, k := range obs.Fragments() {
		samples := obs.Samples(k)
		r := results[k]
		fmt.Printf("  %-12s %4d samples: %s\n", k, len(samples), r)
		if r.Recovered && r.Model != nil && r.Class != "constant" {
			fmt.Printf("               recovered model: %s\n", r.Model.Describe())
		}
	}
	fmt.Println()
}

func main() {
	attackFunc("linear pricing formula (weak hiding)", weakSrc, "price", "total",
		func(in *interp.Interp, rng *rand.Rand) error {
			for i := 0; i < 120; i++ {
				_, err := in.Call("price", []interp.Value{
					interp.IntV(int64(rng.Intn(90) + 1)),
					interp.IntV(int64(rng.Intn(40) + 1)),
				})
				if err != nil {
					return err
				}
			}
			return nil
		})

	attackFunc("iterated digest under hidden control flow (strong hiding)", strongSrc, "digest", "h",
		func(in *interp.Interp, rng *rand.Rand) error {
			for i := 0; i < 400; i++ {
				_, err := in.Call("digest", []interp.Value{
					interp.IntV(int64(rng.Intn(500) + 1)),
					interp.IntV(int64(rng.Intn(6) + 3)),
				})
				if err != nil {
					return err
				}
			}
			return nil
		})

	fmt.Println("conclusion: values related by linear/polynomial hidden code are")
	fmt.Println("recoverable from observed traffic; hidden predicates and hidden")
	fmt.Println("loops mix execution paths and defeat the known automatic methods,")
	fmt.Println("which is the paper's §3 argument, measured.")
}
