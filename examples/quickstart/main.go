// Quickstart: split the paper's Figure 2 function into open and hidden
// components, show both, and demonstrate that the split program behaves
// exactly like the original while the open side no longer contains the
// hidden slice.
package main

import (
	"fmt"
	"log"

	"slicehide/internal/core"
	"slicehide/internal/hrt"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

// src is the running example of the paper (Figure 2): splitting function f
// is initiated by hiding local variable a; the forward data slice pulls in
// b, i, and sum, the while loop's control flow, and the if's then-branch.
const src = `
func f(x: int, y: int, z: int): int {
    var a: int = 3 * x + y;
    var b: int = 0;
    var sum: int = 0;
    var i: int = a;
    var B: int[] = new int[z + 1];
    while (i < z) {
        b = 2 * i;
        sum = sum + b;
        B[i] = b;
        i = i + 1;
    }
    if (sum > 100) {
        sum = sum - 100;
    } else {
        B[0] = x;
    }
    return sum;
}
func main() {
    print(f(1, 2, 10));
    print(f(3, 1, 25));
    print(f(2, 2, 40));
}
`

func main() {
	prog, err := ir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Split f, seeding the slice at local variable a (paper Figure 2).
	res, err := core.SplitProgram(prog, []core.Spec{{Func: "f", Seed: "a"}}, slicer.Policy{})
	if err != nil {
		log.Fatal(err)
	}
	sf := res.Splits["f"]

	fmt.Println("=== original function ===")
	fmt.Println(ir.FormatFunc(sf.Orig))
	fmt.Println("=== open component Of (runs on the unsecure machine) ===")
	fmt.Println(ir.FormatFunc(sf.Open))
	fmt.Println("=== hidden component Hf (runs on the secure device) ===")
	fmt.Println(sf.Hidden)

	fmt.Printf("hidden variables: fully=%d partially=%d, fragments=%d, ILPs=%d\n\n",
		len(sf.FullyHidden), len(sf.PartiallyHidden), len(sf.Hidden.Frags), len(sf.ILPs))

	// Execute the original and the split program; outputs must match.
	origOut, _, err := hrt.RunOriginal(res.Orig, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	out := hrt.RunSplit(res, nil, 1_000_000)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	fmt.Printf("original output:\n%s", origOut)
	fmt.Printf("split output (via %d open<->hidden interactions):\n%s", out.Interactions, out.Output)
	if origOut == out.Output {
		fmt.Println("outputs match: the split preserves behavior.")
	} else {
		log.Fatal("outputs differ!")
	}
}
