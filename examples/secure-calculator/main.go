// Secure calculator: the "untrustworthy user" scenario from the paper's
// introduction, using the §2.2 object-oriented extension. A loan-pricing
// application is installed on client machines; each customer is an object
// whose risk state (hidden class fields) lives on the vendor's secure
// server, one hidden store per customer instance. Clients receive only the
// open component, which is incomplete without the vendor's server.
//
// The example runs the same workload three ways — unsplit, split in-process,
// and split across a simulated LAN — and reports interaction counts and
// overhead (the Table 5 methodology).
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"slicehide/internal/core"
	"slicehide/internal/hrt"
	"slicehide/internal/interp"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

const src = `
// Customer carries the proprietary risk model's state. The fields risk and
// tier are the vendor's crown jewels: after splitting, their values and the
// code that maintains them exist only on the secure server, one hidden
// store per customer object.
class Customer {
    field risk: int;
    field tier: int;

    method apply(income: int, debt: int, years: int) {
        var score: int = income * 3 - debt * 7 + years * years;
        var k: int = 0;
        while (k < years) {
            score = score + (income - debt) / (k * k + 1);
            k = k + 1;
        }
        risk = risk + score;
        if (risk > 5000) {
            tier = 1;
        } else {
            tier = 3;
        }
    }

    method rate(): int {
        var base: int = 350 + tier * 100;
        var adj: int = risk / 1000;
        if (adj > 200) { adj = 200; }
        if (adj < -100) { adj = -100; }
        return base + adj;
    }
}

func main() {
    var alice: Customer = new Customer();
    var bob: Customer = new Customer();
    alice.apply(80000, 20000, 5);
    bob.apply(30000, 29000, 1);
    print("alice:", alice.rate());
    print("bob:  ", bob.rate());
    alice.apply(12000, 38000, 2);
    print("alice after refinancing:", alice.rate());
    print("bob unchanged:          ", bob.rate());
}
`

func main() {
	prog, err := ir.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	// Split the risk-model method; the slice pulls the class fields in,
	// engaging the per-instance hidden-fields extension.
	res, err := core.SplitProgram(prog,
		[]core.Spec{{Func: "Customer.apply", Seed: "score"}},
		slicer.Policy{HideFields: true})
	if err != nil {
		log.Fatal(err)
	}
	sf := res.Splits["Customer.apply"]
	fmt.Printf("split Customer.apply: %d hidden vars (fields: %v), %d fragments, %d ILPs\n",
		len(sf.Hidden.Vars), fieldNames(res), len(sf.Hidden.Frags), len(sf.ILPs))
	if fi := res.Fields["Customer"]; fi != nil {
		fmt.Printf("functions rewritten to fetch hidden fields: %v\n", fi.Rewritten)
	}
	fmt.Println("\nthe client receives only this open component:")
	fmt.Println(ir.FormatFunc(sf.Open))

	// 1. Baseline: the vendor's unsplit build.
	start := time.Now()
	origOut, _, err := hrt.RunOriginal(res.Orig, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	baseline := time.Since(start)

	// 2. Split, hidden component in-process: behavior must be identical.
	out := hrt.RunSplit(res, nil, 10_000_000)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	if out.Output != origOut {
		log.Fatalf("split changed behavior:\n%s\nvs\n%s", out.Output, origOut)
	}

	// 3. Split across a simulated LAN (200µs RTT, the Table 5 setup).
	server := hrt.NewServer(hrt.NewRegistry(res))
	counters := &hrt.Counters{}
	var transport hrt.Transport = &hrt.Latency{Inner: &hrt.Local{Server: server}, RTT: 200 * time.Microsecond}
	transport = &hrt.Counting{Inner: transport, Counters: counters}
	var sb strings.Builder
	in := interp.New(res.Open, interp.Options{
		Out:        &sb,
		Hidden:     &hrt.Session{T: transport},
		SplitFuncs: res.SplitSet(),
	})
	start = time.Now()
	if err := in.Run(); err != nil {
		log.Fatal(err)
	}
	lan := time.Since(start)
	if sb.String() != origOut {
		log.Fatal("LAN run changed behavior")
	}

	fmt.Print(origOut)
	fmt.Printf("\nbaseline (unsplit):        %v\n", baseline.Round(time.Microsecond))
	fmt.Printf("split over simulated LAN:  %v (%d interactions, %d values shipped)\n",
		lan.Round(time.Microsecond), counters.Interactions(), counters.ValuesSent.Load())
	fmt.Println("\nfor a workload this tiny the round trips dominate; Table 5 in")
	fmt.Println("EXPERIMENTS.md measures realistic workloads where the overhead")
	fmt.Println("lands in the paper's 3-58% band.")
}

func fieldNames(res *core.Result) []string {
	var names []string
	for _, fi := range res.Fields {
		for _, v := range fi.Component.Vars {
			names = append(names, v.String())
		}
	}
	return names
}
