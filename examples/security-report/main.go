// Security report: the full pipeline on one workload — select functions via
// the call-graph cut, pick the seed with the highest maximum ILP arithmetic
// complexity (the paper's §4 selection rule), split, and print a per-ILP
// complexity report plus the aggregated table rows.
package main

import (
	"fmt"
	"log"

	"slicehide/internal/callgraph"
	"slicehide/internal/complexity"
	"slicehide/internal/core"
	"slicehide/internal/corpus"
	"slicehide/internal/ir"
	"slicehide/internal/report"
	"slicehide/internal/slicer"
)

func main() {
	// Use the jess-like workload kernel (a forward-chaining rule engine).
	kernel, err := corpus.KernelByName("jess")
	if err != nil {
		log.Fatal(err)
	}
	prog, err := ir.Compile(kernel.Source(2000))
	if err != nil {
		log.Fatal(err)
	}
	policy := slicer.Policy{}

	// 1. Function selection: a cut across the call graph, avoiding
	// recursive and loop-called functions (§2.2).
	g := callgraph.Build(prog)
	chosen, uncovered := g.Cut("main", callgraph.CutOptions{
		AvoidRecursive:  true,
		AvoidLoopCalled: true,
		Eligible: func(q string) bool {
			f := prog.Func(q)
			if f == nil || q == "main" {
				return false
			}
			seed, sl := slicer.BestSeed(f, policy)
			return seed != nil && sl.Size() >= 3
		},
	})
	fmt.Printf("call-graph cut selected: %v (uncovered leaves: %v)\n\n", chosen, uncovered)

	var allReports []complexity.Report
	for _, fn := range chosen {
		f := prog.Func(fn)

		// 2. Seed selection: maximize the maximum ILP arithmetic complexity
		// across candidate local variables (§4).
		var best *core.SplitFunc
		var bestReports []complexity.Report
		var bestAC complexity.AC
		for _, v := range append(append([]*ir.Var(nil), f.Locals...), f.Params...) {
			if !policy.HideableVar(v) {
				continue
			}
			sf, err := core.Split(f, v, policy)
			if err != nil {
				log.Fatal(err)
			}
			if len(sf.ILPs) == 0 {
				continue
			}
			reports := complexity.Analyze(sf)
			if max := complexity.MaxAC(reports); best == nil || complexity.Less(bestAC, max) {
				best, bestReports, bestAC = sf, reports, max
			}
		}
		if best == nil {
			continue
		}
		fmt.Printf("split %s at seed %s: slice=%d stmts, fragments=%d, ILPs=%d, max AC=%s\n",
			fn, best.Seed, best.Slice.Size(), len(best.Hidden.Frags), len(best.ILPs), bestAC)

		t := report.New("", "ilp", "kind", "leaked expression", "AC", "CC")
		for _, r := range bestReports {
			t.Row(r.ILP.ID, r.ILP.Kind, ir.ExprString(r.ILP.HiddenExpr), r.AC.String(), r.CC.String())
		}
		fmt.Println(t.String())
		allReports = append(allReports, bestReports...)
	}

	// 3. Aggregate the per-benchmark rows (Tables 3 and 4 methodology).
	t3, t4 := complexity.Aggregate("jess-kernel", allReports)
	fmt.Printf("arithmetic complexity distribution: constant=%d linear=%d polynomial=%d rational=%d arbitrary=%d (max degree %d)\n",
		t3.Constant, t3.Linear, t3.Polynomial, t3.Rational, t3.Arbitrary, t3.MaxDegree)
	fmt.Printf("control-flow complexity: paths-variable=%d predicates-hidden=%d flow-hidden=%d of %d ILPs\n",
		t4.PathsVariable, t4.PredicatesHidden, t4.FlowHidden, t3.Total())
}
