// Package slicehide reproduces "Hiding Program Slices for Software
// Security" (Xiangyu Zhang and Rajiv Gupta, CGO 2003): a toolchain that
// splits programs into an open component, installed on an unsecure machine,
// and a hidden component constructed from forward data slices, installed on
// a secure machine or device. The open component is incomplete without the
// hidden one; recovering the hidden code from the observable interaction is
// the adversary's (hard) problem.
//
// The package is a facade over the implementation packages:
//
//	internal/lang/*     MiniJ front end (lexer, parser, type checker)
//	internal/ir         statement-level IR and lowering
//	internal/cfg        control-flow graphs, dominators, loops
//	internal/dataflow   reaching definitions, def-use chains, liveness
//	internal/callgraph  call graph, recursion/loop-call detection, cuts
//	internal/slicer     forward data slices (§2.2 Step 1 + Step 3 roles)
//	internal/core       the splitting transformation and ILP inventory
//	internal/complexity the §3 security analysis (AC lattice, Fig. 3, CC)
//	internal/hrt        the split runtime: hidden server and transports
//	internal/attack     the automated-recovery toolkit (§3, measured)
//	internal/corpus     synthetic benchmark corpora and workload kernels
//	internal/experiments the §4 evaluation drivers (Tables 1–5)
//
// Quick start:
//
//	prog, _ := slicehide.Compile(src)
//	res, _ := slicehide.Split(prog, []slicehide.Spec{{Func: "f", Seed: "a"}})
//	out := slicehide.RunSplit(res, nil, 0)       // behaves like the original
//	reports := slicehide.AnalyzeILPs(res.Splits["f"])
package slicehide

import (
	"time"

	"slicehide/internal/complexity"
	"slicehide/internal/core"
	"slicehide/internal/hrt"
	"slicehide/internal/ir"
	"slicehide/internal/slicer"
)

// Program is a compiled MiniJ program in IR form.
type Program = ir.Program

// Spec names a function to split and optionally its seed variable.
type Spec = core.Spec

// SplitResult is a program-level split: the open program plus the hidden
// components and ILP inventory.
type SplitResult = core.Result

// SplitFunc is the split record of one function.
type SplitFunc = core.SplitFunc

// ILP is an information leak point (§3).
type ILP = core.ILP

// Policy controls which variable classes may be hidden.
type Policy = slicer.Policy

// Options tunes the splitting transformation.
type Options = core.Options

// ComplexityReport characterizes one ILP (arithmetic and control-flow
// complexity).
type ComplexityReport = complexity.Report

// Transport carries open→hidden requests; see hrt for Local, Latency,
// Counting, and TCP implementations.
type Transport = hrt.Transport

// RunOutcome summarizes a split execution.
type RunOutcome = hrt.RunOutcome

// Compile parses, type-checks, and lowers MiniJ source.
func Compile(src string) (*Program, error) { return ir.Compile(src) }

// Split applies the splitting transformation to the named functions with
// the default policy (hide scalar locals and parameters).
func Split(prog *Program, specs []Spec) (*SplitResult, error) {
	return core.SplitProgram(prog, specs, slicer.Policy{})
}

// SplitWith is Split with an explicit policy and transformation options.
func SplitWith(prog *Program, specs []Spec, policy Policy, opts Options) (*SplitResult, error) {
	return core.SplitProgramOpts(prog, specs, policy, opts)
}

// AnalyzeILPs runs the §3 security analysis on one split function.
func AnalyzeILPs(sf *SplitFunc) []ComplexityReport { return complexity.Analyze(sf) }

// RunOriginal executes the unsplit program and returns its output and the
// number of interpreter steps (0 maxSteps = unlimited).
func RunOriginal(prog *Program, maxSteps int64) (string, int64, error) {
	return hrt.RunOriginal(prog, maxSteps)
}

// RunSplit executes the open program against a fresh in-process hidden
// server. wrap, when non-nil, decorates the transport (e.g. to add
// latency); see the hrt package for transports.
func RunSplit(res *SplitResult, wrap func(Transport) Transport, maxSteps int64) RunOutcome {
	return hrt.RunSplit(res, wrap, maxSteps)
}

// WithLatency returns a transport wrapper adding a fixed round-trip delay,
// reproducing the paper's LAN deployment (Table 5).
func WithLatency(rtt time.Duration) func(Transport) Transport {
	return func(t Transport) Transport { return &hrt.Latency{Inner: t, RTT: rtt} }
}
